"""Simulation configuration: the "times charged for primitive operations".

ORACLE "accepts input specifications such as the number of PEs and their
interconnection scheme, the load balancing strategy to be used, control
strategy options, ... and times to be charged for primitive operations".
This module is that input record.

The paper deliberately chose a *low* communication-to-computation ratio so
that channel saturation would not mask the property being measured (load
distribution effectiveness).  :func:`CostModel.low_comm` reproduces that
regime; :func:`CostModel.high_comm` supports the ratio-sensitivity study
the conclusion calls for.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Literal, Mapping

__all__ = ["CostModel", "SimConfig"]


def _coerce_bool(raw: str) -> bool:
    low = raw.strip().lower()
    if low in ("1", "true", "yes", "on"):
        return True
    if low in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {raw!r}")


def _coerce_opt_int(raw: str) -> int | None:
    low = raw.strip().lower()
    if low in ("none", "null"):
        return None
    return int(raw)


def _spell_value(value: object) -> str:
    """The spec-string spelling of a config value (inverse of coercion)."""
    if value is None:
        return "none"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        from .._spec_util import fmt_num

        return fmt_num(value)
    return str(value)


#: spec-override coercers for every SimConfig field the grammar can
#: express (everything but the nested costs and the pe_speeds tuple)
_CFG_COERCE: dict[str, object] = {
    "seed": int,
    "load_info": str,
    "load_info_delay": float,
    "load_info_interval": float,
    "sample_interval": float,
    "sample_per_pe": _coerce_bool,
    "max_events": _coerce_opt_int,
    "trace_hops": _coerce_bool,
    "queue_discipline": str,
}

LoadInfoMode = Literal["instant", "on_change", "periodic", "channel", "piggyback"]


@dataclass(frozen=True)
class CostModel:
    """Chargeable simulated times for primitive operations (in sim units).

    Attributes
    ----------
    leaf_work:
        Execution time of a leaf goal (one that spawns no children).
    split_work:
        Execution time of an interior goal up to the point where it has
        spawned its children and suspends awaiting responses.
    combine_work:
        Execution time to fold children's responses into this task's
        result once the last response arrives.
    word_time:
        Channel occupancy per message word (a goal message is
        ``size_words`` words, see :mod:`repro.oracle.message`).
    hop_overhead:
        Fixed per-hop channel occupancy (switching/arbitration) added to
        the word cost of every transfer.
    route_decision:
        Time the communication co-processor spends deciding where to send
        or forward a goal.  The paper assumes a co-processor, so this does
        **not** consume PE compute time; it only delays the message.
    gm_cycle_overhead:
        Co-processor time for one wakeup of the Gradient Model's gradient
        process (state classification + proximity recomputation).
    """

    leaf_work: float = 50.0
    split_work: float = 40.0
    combine_work: float = 20.0
    word_time: float = 1.0
    hop_overhead: float = 1.0
    route_decision: float = 0.5
    gm_cycle_overhead: float = 0.5

    def __post_init__(self) -> None:
        for field_name in (
            "leaf_work",
            "split_work",
            "combine_work",
            "word_time",
            "hop_overhead",
            "route_decision",
            "gm_cycle_overhead",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.leaf_work == 0 and self.split_work == 0 and self.combine_work == 0:
            raise ValueError("at least one work cost must be positive")

    def transfer_time(self, size_words: int) -> float:
        """Channel occupancy of a ``size_words``-word message."""
        return self.hop_overhead + self.word_time * size_words

    @classmethod
    def low_comm(cls) -> "CostModel":
        """The paper's regime: communication far cheaper than computation."""
        return cls()

    @classmethod
    def high_comm(cls) -> "CostModel":
        """A communication-bound regime for the sensitivity extension."""
        return cls(word_time=10.0, hop_overhead=10.0)

    @classmethod
    def unit(cls) -> "CostModel":
        """Everything costs 1 unit — convenient for hand-checkable tests."""
        return cls(
            leaf_work=1.0,
            split_work=1.0,
            combine_work=1.0,
            word_time=1.0,
            hop_overhead=0.0,
            route_decision=0.0,
            gm_cycle_overhead=0.0,
        )

    def with_comm_ratio(self, ratio: float) -> "CostModel":
        """Scale communication costs to ``ratio`` × (word cost / leaf work).

        ``ratio = word_time / leaf_work`` after scaling; the default model
        has ratio 0.02.
        """
        if ratio <= 0:
            raise ValueError("comm/comp ratio must be positive")
        word = ratio * self.leaf_work
        return replace(self, word_time=word, hop_overhead=word)

    def to_dict(self) -> dict[str, float]:
        """JSON-serializable form (the :mod:`repro.parallel` spec format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "CostModel":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        return cls(**data)


@dataclass(frozen=True)
class SimConfig:
    """Everything a single simulation run needs besides topology+workload.

    Attributes
    ----------
    costs:
        The :class:`CostModel` in effect.
    seed:
        Seed for the run's private RNG (tie-breaking, synthetic workloads).
    load_info:
        How neighbor-load information propagates:

        ``"instant"``
            neighbors always see the true current queue length (an oracle
            bound — useful to isolate information-staleness effects);
        ``"on_change"``
            the default: a PE posts its new load to neighbors whenever its
            queue length changes, arriving after ``load_info_delay`` but
            not consuming channel bandwidth (the paper's piggyback +
            co-processor assumption);
        ``"periodic"``
            broadcast every ``load_info_interval`` units (also free of
            channel bandwidth);
        ``"channel"``
            updates are real one-word messages contending for channels
            (the most pessimistic model);
        ``"piggyback"``
            the paper's stated optimization taken literally: the load
            word travels *only* attached to regular goal/response
            messages crossing a hop — zero extra traffic, but a
            neighbor's view goes stale whenever the link goes quiet.
            Strategy control words (GM proximities etc.) cannot wait
            for traffic and fall back to ``"on_change"`` delivery.
    load_info_delay:
        Propagation latency of a load word in the non-channel modes.
    load_info_interval:
        Broadcast period for ``load_info="periodic"``.
    sample_interval:
        Sampling period of the utilization time-series recorder (the
        paper's "specially formatted output ... at every sampling
        interval"); ``0`` disables sampling.
    sample_per_pe:
        Also record each PE's utilization at every sample (the data the
        paper's red/blue graphics monitor displays).  Off by default:
        it costs ``n_pes`` floats per sample.
    max_events:
        Safety valve passed to the engine; ``None`` means unlimited.
    trace_hops:
        Record a histogram of goal-message travel distances (Table 3).
    queue_discipline:
        Order in which a PE's executor serves its queue: ``"fifo"``
        (the default; oldest first — breadth-first over the goal tree,
        matching the paper's "messages waiting to be processed" framing)
        or ``"lifo"`` (newest first — depth-first, the frontier-bounding
        alternative later systems adopted).  Strategy shipping policies
        (GM's newest/oldest) are independent of this.
    pe_speeds:
        Optional per-PE speed factors (tuple of positive floats, one per
        PE; 1.0 = nominal).  A PE with speed 2.0 executes work in half
        the charged time.  ``None`` (the paper's setting) means a
        homogeneous machine.  Heterogeneity is an extension study: the
        dynamic schemes' whole premise is adapting to conditions static
        schedulers cannot see.
    """

    costs: CostModel = field(default_factory=CostModel)
    seed: int = 0
    load_info: LoadInfoMode = "on_change"
    load_info_delay: float = 1.0
    load_info_interval: float = 20.0
    sample_interval: float = 0.0
    sample_per_pe: bool = False
    max_events: int | None = 50_000_000
    trace_hops: bool = True
    queue_discipline: str = "fifo"
    pe_speeds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.load_info not in ("instant", "on_change", "periodic", "channel", "piggyback"):
            raise ValueError(f"unknown load_info mode {self.load_info!r}")
        if self.queue_discipline not in ("fifo", "lifo"):
            raise ValueError(f"unknown queue_discipline {self.queue_discipline!r}")
        if self.pe_speeds is not None and any(s <= 0 for s in self.pe_speeds):
            raise ValueError("pe_speeds must all be positive")
        if self.load_info_delay < 0:
            raise ValueError("load_info_delay must be non-negative")
        if self.load_info_interval <= 0:
            raise ValueError("load_info_interval must be positive")
        if self.sample_interval < 0:
            raise ValueError("sample_interval must be non-negative")

    def replace(self, **changes: object) -> "SimConfig":
        """Return a copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form: nested costs dict, tuples as lists.

        The canonical config serialization used by :mod:`repro.parallel`
        run specs and the on-disk result cache.  :meth:`from_dict` is the
        exact inverse (``from_dict(to_dict(c)) == c``).
        """
        data = asdict(self)
        data["costs"] = self.costs.to_dict()
        if self.pe_speeds is not None:
            data["pe_speeds"] = list(self.pe_speeds)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SimConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        kwargs = dict(data)
        costs = kwargs.get("costs")
        if isinstance(costs, dict):
            kwargs["costs"] = CostModel.from_dict(costs)
        speeds = kwargs.get("pe_speeds")
        if speeds is not None:
            kwargs["pe_speeds"] = tuple(float(s) for s in speeds)
        return cls(**kwargs)

    # -- the scenario spec grammar's ``cfg.`` / ``cost.`` overrides --------------

    def with_spec_overrides(self, overrides: "Mapping[str, str]") -> "SimConfig":
        """Apply ``cfg.<field>=value`` / ``cost.<field>=value`` overrides.

        The string values come from a
        :class:`~repro.scenario.Scenario` spec's ``?key=value`` block
        and are coerced to the field's type (``max_events`` accepts
        ``none``).  Unknown fields raise :class:`ValueError` naming the
        expressible ones.
        """
        if not overrides:
            return self
        cfg_changes: dict[str, object] = {}
        cost_changes: dict[str, float] = {}
        cost_fields = {f.name for f in fields(CostModel)}
        for key, raw in overrides.items():
            prefix, _, name = key.partition(".")
            if prefix == "cfg" and name in _CFG_COERCE:
                cfg_changes[name] = _CFG_COERCE[name](raw)  # type: ignore[operator]
            elif prefix == "cost" and name in cost_fields:
                cost_changes[name] = float(raw)
            else:
                known = ", ".join(
                    [f"cfg.{n}" for n in _CFG_COERCE] + [f"cost.{n}" for n in sorted(cost_fields)]
                )
                raise ValueError(f"unknown config override {key!r}; known: {known}")
        if cost_changes:
            cfg_changes["costs"] = replace(self.costs, **cost_changes)
        return replace(self, **cfg_changes)  # type: ignore[arg-type]

    def spec_overrides(self) -> dict[str, str]:
        """The override mapping that rebuilds ``self`` from the default.

        Exact inverse of :meth:`with_spec_overrides` — every non-default
        scalar field is emitted as ``cfg.<field>`` / ``cost.<field>``
        with a spelling that coerces back to the identical value.
        ``pe_speeds`` (a tuple) has no spec-string syntax and raises.
        """
        if self.pe_speeds is not None:
            raise ValueError("pe_speeds has no spec-string syntax")
        base = SimConfig()
        out: dict[str, str] = {}
        for name in _CFG_COERCE:
            value = getattr(self, name)
            if value != getattr(base, name):
                out[f"cfg.{name}"] = _spell_value(value)
        base_costs = CostModel()
        for f in fields(CostModel):
            value = getattr(self.costs, f.name)
            if value != getattr(base_costs, f.name):
                out[f"cost.{f.name}"] = _spell_value(value)
        return out
