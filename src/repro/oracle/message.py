"""Message types exchanged between simulated PEs.

Four kinds of traffic appear in the paper's model:

* **goal messages** — a newly created goal being placed (CWN) or a queued
  goal being shipped to a neighbor (GM).  These are the interesting
  traffic: hop counts of goal messages make up the paper's Table 3.
* **response messages** — a finished (sub)computation's result returning
  to the parent task's PE, routed shortest-path.
* **load updates** — the one-word load broadcast CWN piggybacks onto
  regular traffic or sends periodically.
* **proximity updates** — the Gradient Model's broadcast-on-change
  proximity word.

All four are light ``__slots__`` records; the channel model charges
transfer time per message based on its ``size_words``.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ControlWord",
    "GoalMessage",
    "LoadUpdate",
    "Message",
    "ResponseMessage",
]


class Message:
    """Base class: anything that can occupy a channel.

    ``src``/``dst`` are PE indices for the *current hop* (channels connect
    adjacent PEs or bus members, so end-to-end routes are sequences of
    messages re-submitted hop by hop).
    """

    __slots__ = ("src", "dst", "size_words")

    kind = "message"

    def __init__(self, src: int, dst: int, size_words: int = 1) -> None:
        self.src = src
        self.dst = dst
        self.size_words = size_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.src}->{self.dst})"


class GoalMessage(Message):
    """A goal in flight.

    ``hops`` counts the distance travelled from the *source* PE (the PE
    where the goal was created), which is what CWN's radius/horizon rules
    and Table 3's histogram are defined over.  ``goal`` is a
    :class:`repro.workload.base.Goal`.  ``target`` is used only by
    strategies that route to an explicit destination (the global
    baselines); -1 means "no fixed target".
    """

    __slots__ = ("goal", "hops", "origin", "target", "load_word")

    kind = "goal"

    def __init__(
        self,
        src: int,
        dst: int,
        goal: Any,
        hops: int = 0,
        origin: int | None = None,
        target: int = -1,
        size_words: int = 4,
    ) -> None:
        super().__init__(src, dst, size_words)
        self.goal = goal
        self.hops = hops
        self.origin = src if origin is None else origin
        self.target = target
        #: sender's load, attached in ``load_info="piggyback"`` mode
        #: (the paper's "piggybacking the load information 'word' with
        #: regular messages"); None when not piggybacking.
        self.load_word: float | None = None


class ResponseMessage(Message):
    """A result word returning to the parent task, routed shortest-path.

    ``final_dst`` is the PE hosting the parent task; ``src``/``dst`` are
    rewritten at each hop by the router.  ``child_index`` slots the value
    into the parent's ordered response vector.
    """

    __slots__ = ("task_id", "child_index", "value", "final_dst", "load_word")

    kind = "response"

    def __init__(
        self,
        src: int,
        dst: int,
        final_dst: int,
        task_id: int,
        child_index: int,
        value: Any,
        size_words: int = 2,
    ) -> None:
        super().__init__(src, dst, size_words)
        self.final_dst = final_dst
        self.task_id = task_id
        self.child_index = child_index
        self.value = value
        #: sender's load for ``load_info="piggyback"`` (see GoalMessage)
        self.load_word: float | None = None


class LoadUpdate(Message):
    """CWN's one-word load broadcast (queue length of the sender)."""

    __slots__ = ("load",)

    kind = "load"

    def __init__(self, src: int, dst: int, load: float, size_words: int = 1) -> None:
        super().__init__(src, dst, size_words)
        self.load = load


class ControlWord(Message):
    """A one-word strategy datum (e.g. GM's broadcast-on-change proximity).

    ``word_kind`` routes the word to the right strategy handler; GM uses
    ``"prox"``, extensions may define their own kinds (ACWN's work
    requests use ``"workreq"``).
    """

    __slots__ = ("word_kind", "value")

    kind = "control"

    def __init__(
        self, src: int, dst: int, word_kind: str, value: float, size_words: int = 1
    ) -> None:
        super().__init__(src, dst, size_words)
        self.word_kind = word_kind
        self.value = value
