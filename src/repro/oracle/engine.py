"""Discrete-event simulation kernel (the core of our ORACLE re-implementation).

The paper ran its simulations on ORACLE, a multiprocessor simulator written
in SIMSCRIPT II.5.  SIMSCRIPT provides an event calendar *and* a process
abstraction; ORACLE used one simulated process per PE user process and one
per communication channel.  This module provides the equivalent kernel in
pure Python:

* an event heap keyed by ``(time, priority, sequence)`` so that
  simultaneous events fire in a deterministic order,
* a generator-based :class:`Process` abstraction — a process is a Python
  generator that ``yield``\\ s *commands* (:func:`hold`, :func:`waitevent`,
  :func:`passivate`) to the kernel, exactly in the style of SIMSCRIPT or
  SimPy processes,
* :class:`Signal` for condition-style wakeups.

The kernel is deliberately small and allocation-light: simulations in the
reproduction push hundreds of thousands of events per run, and following
the HPC guidance ("make it work, make it reliably fast where profiles say
so") the hot path avoids per-event object churn where practical.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "Engine",
    "Process",
    "Signal",
    "SimulationError",
    "hold",
    "passivate",
    "waitevent",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, double activation...)."""


# ---------------------------------------------------------------------------
# Process commands.
#
# A process generator yields one of these light-weight command tuples.  We
# use plain tuples with an integer opcode rather than command classes: the
# kernel dispatches on ``cmd[0]`` with no attribute lookups, which measures
# roughly 2x faster than a class hierarchy for event-dense simulations.
# ---------------------------------------------------------------------------

_HOLD = 0
_WAIT = 1
_PASSIVATE = 2


def hold(delay: float) -> tuple[int, float]:
    """Command: advance this process by ``delay`` simulated time units."""
    return (_HOLD, delay)


def waitevent(signal: "Signal") -> tuple[int, "Signal"]:
    """Command: sleep until ``signal`` fires; resumes with its payload."""
    return (_WAIT, signal)


def passivate() -> tuple[int, None]:
    """Command: sleep indefinitely until somebody calls :meth:`Process.activate`."""
    return (_PASSIVATE, None)


class Signal:
    """A broadcast condition processes can wait on.

    :meth:`fire` wakes *all* waiting processes at the current simulation
    time and hands each the payload.  A :class:`Signal` carries no memory:
    a ``fire`` with no waiters is lost (use queues or state for level-
    triggered conditions).
    """

    __slots__ = ("name", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []

    def fire(self, payload: Any = None) -> int:
        """Wake every waiting process; return the number woken."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume_with(payload)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A simulated process driven by a Python generator.

    The generator receives the kernel's resume payload from each ``yield``
    (the elapsed command for ``hold``, the signal payload for ``waitevent``,
    and whatever ``activate(payload=...)`` passed for ``passivate``).
    """

    __slots__ = ("engine", "gen", "name", "alive", "_asleep")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        #: True while passivated / waiting (i.e. not on the event heap).
        self._asleep = False

    # -- kernel-side plumbing ------------------------------------------------

    def _step(self, payload: Any = None) -> None:
        """Advance the generator one command and schedule its continuation."""
        engine = self.engine
        try:
            cmd = self.gen.send(payload)
        except StopIteration:
            self.alive = False
            return
        op = cmd[0]
        if op == _HOLD:
            delay = cmd[1]
            if delay < 0:
                self.alive = False
                raise SimulationError(
                    f"process {self.name!r} held for negative delay {delay!r}"
                )
            engine._schedule_process(delay, self)
        elif op == _WAIT:
            signal: Signal = cmd[1]
            self._asleep = True
            signal._waiters.append(self)
        elif op == _PASSIVATE:
            self._asleep = True
        else:  # pragma: no cover - defensive
            self.alive = False
            raise SimulationError(f"unknown process command {cmd!r}")

    def _resume_with(self, payload: Any) -> None:
        if not self.alive:
            return
        self._asleep = False
        self.engine._schedule_resume(self, payload)

    # -- public API ----------------------------------------------------------

    @property
    def asleep(self) -> bool:
        """True while passivated or waiting on a signal (off the heap)."""
        return self._asleep

    def activate(self, payload: Any = None) -> None:
        """Wake a passivated process immediately (at the current sim time)."""
        if not self.alive:
            raise SimulationError(f"cannot activate dead process {self.name!r}")
        if not self._asleep:
            raise SimulationError(
                f"process {self.name!r} is already scheduled; activate() is "
                "only valid for passivated/waiting processes"
            )
        self._resume_with(payload)

    def kill(self) -> None:
        """Permanently stop the process; pending resumptions are ignored."""
        self.alive = False
        self.gen.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if not self.alive else ("asleep" if self._asleep else "ready")
        return f"Process({self.name!r}, {state})"


class Engine:
    """The event calendar and simulation clock.

    Events are ``(time, priority, seq, action, payload)`` heap entries.
    ``priority`` orders simultaneous events (lower fires first); ``seq`` is
    a monotone tiebreaker guaranteeing FIFO order among equal
    (time, priority) events, which makes every run bit-for-bit
    deterministic for a fixed seed.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[list] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.events_executed: int = 0
        #: Optional hard event-count limit, a guard against runaway models.
        self.max_events: int | None = None

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        payload: Any = None,
        priority: int = 10,
    ) -> None:
        """Schedule ``action(payload)`` to run ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        heapq.heappush(
            self._heap, [self.now + delay, priority, self._seq, action, payload]
        )

    def _schedule_process(self, delay: float, proc: Process) -> None:
        self._seq += 1
        heapq.heappush(self._heap, [self.now + delay, 10, self._seq, proc, None])

    def _schedule_resume(self, proc: Process, payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, [self.now, 10, self._seq, proc, payload])

    def process(self, gen: Generator, name: str = "", delay: float = 0.0) -> Process:
        """Register a generator as a process; it first runs ``delay`` from now."""
        proc = Process(self, gen, name)
        self._schedule_process(delay, proc)
        return proc

    # -- execution -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains, :meth:`stop` is called, or the
        clock passes ``until``.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still fire.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        heap = self._heap
        max_events = self.max_events
        try:
            while heap and not self._stopped:
                entry = heapq.heappop(heap)
                time = entry[0]
                if until is not None and time > until:
                    # Put it back: a later run() call may continue from here.
                    heapq.heappush(heap, entry)
                    self.now = until
                    break
                self.now = time
                self.events_executed += 1
                if max_events is not None and self.events_executed > max_events:
                    raise SimulationError(
                        f"event limit exceeded ({max_events}); "
                        "likely a runaway model"
                    )
                action = entry[3]
                if type(action) is Process:
                    if action.alive:
                        action._step(entry[4])
                else:
                    action(entry[4])
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Execute a single event; return False if the calendar is empty."""
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self.now = entry[0]
        self.events_executed += 1
        action = entry[3]
        if type(action) is Process:
            if action.alive:
                action._step(entry[4])
        else:
            action(entry[4])
        return True

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the calendar is empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of events currently on the calendar."""
        return len(self._heap)

    def stop(self) -> None:
        """End the run after the current event completes.

        Unlike :meth:`clear`, stopping is sticky: events scheduled *by*
        the in-flight event (or by processes resumed later in the same
        timestep) do not restart execution.  This is how a simulation
        declares "the answer is in" while strategy processes — periodic
        gradient wakeups, steal retries — would otherwise keep seeding
        the calendar forever.
        """
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    def clear(self) -> None:
        """Drop all pending events (used between experiment repetitions)."""
        self._heap.clear()


def drain(engine: Engine, signals: Iterable[Signal]) -> None:
    """Fire a set of signals so no process is left waiting (test helper)."""
    for sig in signals:
        sig.fire(None)
