"""Discrete-event simulation kernel (the core of our ORACLE re-implementation).

The paper ran its simulations on ORACLE, a multiprocessor simulator written
in SIMSCRIPT II.5.  SIMSCRIPT provides an event calendar *and* a process
abstraction; ORACLE used one simulated process per PE user process and one
per communication channel.  This module provides the equivalent kernel in
pure Python:

* an event heap keyed by ``(time, priority, site, sseq)`` so that
  simultaneous events fire in a deterministic order.  A **site** is the
  model entity an event acts for (a PE, a channel, or the machine
  itself, as an integer index) and ``sseq`` is that site's private push
  counter — so an event's full sort key is computable from *local*
  information alone.  That locality is what lets the conservative
  parallel kernel (:mod:`repro.pdes`) reproduce the serial total order
  bit for bit: a shard owning a site draws exactly the sequence numbers
  the serial run would, and events that cross shard boundaries travel
  with their serial key attached,
* direct **event callbacks** — the hot path: any callable can be put on
  the calendar with :meth:`Engine.schedule` (validating) or
  :meth:`Engine.after` (trusted, no validation),
* a recurring-tick facility (:meth:`Engine.tick`) for periodic machinery
  (samplers, load broadcasters, gradient wakeups) that reuses one mutable
  heap entry instead of allocating a fresh one every period,
* a generator-based :class:`Process` abstraction — a process is a Python
  generator that ``yield``\\ s *commands* (:func:`hold`, :func:`waitevent`,
  :func:`passivate`) to the kernel, exactly in the style of SIMSCRIPT or
  SimPy processes — kept for tests and exotic strategies,
* :class:`Signal` for condition-style wakeups.

The kernel is deliberately small and allocation-light: simulations in the
reproduction push hundreds of thousands of events per run, and following
the HPC guidance ("make it work, make it reliably fast where profiles say
so") the hot path avoids per-event object churn.  Everything on the
fib/nqueens Table-2 path — PE executors, channels, periodic strategy
machinery — runs as callbacks; a generator process pays ~2 extra Python
frames per resumption and should only be used where its linear control
flow genuinely earns that cost.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from contextlib import contextmanager
from typing import Any

__all__ = [
    "Engine",
    "Process",
    "Signal",
    "SimulationError",
    "Tick",
    "hold",
    "passivate",
    "process_kernel_active",
    "use_process_kernel",
    "waitevent",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, double activation...)."""


# ---------------------------------------------------------------------------
# Legacy process-kernel switch.
#
# The callback executors are bit-for-bit equivalent to the seed's
# generator processes (same heap entries, same sequence numbers, same
# event count).  The golden tests prove it by running both kernels and
# comparing entire SimResults; this switch is how they reach the
# generator implementations, which are otherwise dead on the hot path.
# ---------------------------------------------------------------------------

_process_kernel = False


def process_kernel_active() -> bool:
    """True while the seed's generator-process kernel is selected."""
    return _process_kernel


@contextmanager
def use_process_kernel(enabled: bool = True):
    """Context manager selecting the generator-process kernel (test-only).

    A ``Machine`` captures the flag once, at construction, and its PEs,
    periodic machinery, and strategy processes all key off that capture —
    so a machine keeps whichever kernel it was built with for its whole
    life, even if this context has since exited.
    """
    global _process_kernel
    previous = _process_kernel
    _process_kernel = enabled
    try:
        yield
    finally:
        _process_kernel = previous


# ---------------------------------------------------------------------------
# Process commands.
#
# A process generator yields one of these light-weight command tuples.  We
# use plain tuples with an integer opcode rather than command classes: the
# kernel dispatches on ``cmd[0]`` with no attribute lookups, which measures
# roughly 2x faster than a class hierarchy for event-dense simulations.
# ---------------------------------------------------------------------------

_HOLD = 0
_WAIT = 1
_PASSIVATE = 2


def hold(delay: float) -> tuple[int, float]:
    """Command: advance this process by ``delay`` simulated time units."""
    return (_HOLD, delay)


def waitevent(signal: "Signal") -> tuple[int, "Signal"]:
    """Command: sleep until ``signal`` fires; resumes with its payload."""
    return (_WAIT, signal)


def passivate() -> tuple[int, None]:
    """Command: sleep indefinitely until somebody calls :meth:`Process.activate`."""
    return (_PASSIVATE, None)


class Signal:
    """A broadcast condition processes can wait on.

    :meth:`fire` wakes *all* waiting processes at the current simulation
    time and hands each the payload.  A :class:`Signal` carries no memory:
    a ``fire`` with no waiters is lost (use queues or state for level-
    triggered conditions).
    """

    __slots__ = ("name", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Process] = []

    def fire(self, payload: Any = None) -> int:
        """Wake every waiting process; return the number woken."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume_with(payload)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """A simulated process driven by a Python generator.

    The generator receives the kernel's resume payload from each ``yield``
    (the elapsed command for ``hold``, the signal payload for ``waitevent``,
    and whatever ``activate(payload=...)`` passed for ``passivate``).
    """

    __slots__ = ("engine", "gen", "name", "alive", "_asleep", "site")

    def __init__(
        self, engine: "Engine", gen: Generator, name: str = "", site: int = 0
    ) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.alive = True
        #: True while passivated / waiting (i.e. not on the event heap).
        self._asleep = False
        #: ordering site this process's resumptions are keyed on (the
        #: PE it models, or 0 for machine-level processes)
        self.site = site

    # -- kernel-side plumbing ------------------------------------------------

    def _step(self, payload: Any = None) -> None:
        """Advance the generator one command and schedule its continuation."""
        engine = self.engine
        try:
            cmd = self.gen.send(payload)
        except StopIteration:
            self.alive = False
            return
        op = cmd[0]
        if op == _HOLD:
            delay = cmd[1]
            if delay < 0:
                self.alive = False
                raise SimulationError(
                    f"process {self.name!r} held for negative delay {delay!r}"
                )
            engine._schedule_process(delay, self)
        elif op == _WAIT:
            signal: Signal = cmd[1]
            self._asleep = True
            signal._waiters.append(self)
        elif op == _PASSIVATE:
            self._asleep = True
        else:  # pragma: no cover - defensive
            self.alive = False
            raise SimulationError(f"unknown process command {cmd!r}")

    def _resume_with(self, payload: Any) -> None:
        if not self.alive:
            return
        self._asleep = False
        self.engine._schedule_resume(self, payload)

    # -- public API ----------------------------------------------------------

    @property
    def asleep(self) -> bool:
        """True while passivated or waiting on a signal (off the heap)."""
        return self._asleep

    def activate(self, payload: Any = None) -> None:
        """Wake a passivated process immediately (at the current sim time)."""
        if not self.alive:
            raise SimulationError(f"cannot activate dead process {self.name!r}")
        if not self._asleep:
            raise SimulationError(
                f"process {self.name!r} is already scheduled; activate() is "
                "only valid for passivated/waiting processes"
            )
        self._resume_with(payload)

    def kill(self) -> None:
        """Permanently stop the process; pending resumptions are ignored."""
        self.alive = False
        self.gen.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if not self.alive else ("asleep" if self._asleep else "ready")
        return f"Process({self.name!r}, {state})"


class Tick:
    """A recurring callback owning one reusable heap entry.

    Created by :meth:`Engine.tick`.  On each firing the kernel calls
    ``fn()`` and pushes the *same* five-slot entry back with an advanced
    time and a fresh sequence number — per period that is one heappush
    and zero allocations, against the generator pattern's resumption
    frames plus a command tuple plus a new heap entry.

    The sequence number is (re)drawn **after** ``fn()`` returns, exactly
    where a generator process would schedule its next ``hold`` — so among
    simultaneous events at its site a tick's next firing sorts after
    everything its body scheduled there, bit-for-bit matching the
    process it replaced.
    """

    __slots__ = (
        "engine", "interval", "fn", "name", "site", "_entry", "_skip", "_stopped"
    )

    def __init__(
        self,
        engine: "Engine",
        interval: float,
        fn: Callable[[], Any],
        name: str = "",
        skip_first: bool = False,
        site: int = 0,
    ) -> None:
        self.engine = engine
        self.interval = interval
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "tick")
        self.site = site
        #: emulate a hold-first process body: the first firing only
        #: reschedules (same event count as the generator's priming step)
        self._skip = skip_first
        self._stopped = False
        self._entry: list | None = None

    def _fire(self, _payload: Any = None) -> None:
        if self._stopped:
            self._entry = None
            return
        if self._skip:
            self._skip = False
        else:
            self.fn()
        engine = self.engine
        entry = self._entry
        site = self.site
        seqs = engine._site_seq
        k = seqs[site] + 1
        seqs[site] = k
        entry[0] = engine.now + self.interval
        entry[3] = k
        heapq.heappush(engine._heap, entry)

    def stop(self) -> None:
        """Cancel future firings (takes effect when the pending entry pops)."""
        self._stopped = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopped else f"every {self.interval}"
        return f"Tick({self.name!r}, {state})"


class Engine:
    """The event calendar and simulation clock.

    Events are ``(time, priority, site, sseq, action, payload)`` heap
    entries.  ``priority`` orders simultaneous events (lower fires
    first); ``site`` is the integer index of the model entity the event
    acts for (``0`` = the machine itself; the
    :class:`~repro.oracle.machine.Machine` assigns ``1 + pe`` to each PE
    and ``1 + n_pes + cid`` to each channel) and ``sseq`` is that site's
    private monotone push counter.  Together they guarantee FIFO order
    among equal ``(time, priority)`` events at one site and a fixed
    deterministic interleave across sites, which makes every run
    bit-for-bit reproducible for a fixed seed — and, because a site's
    counter only ever advances from events the site's owner executes,
    lets the sharded kernel reproduce the identical total order.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[list] = []
        #: per-site push counters, indexed by site id (grown by
        #: :meth:`ensure_sites`; a bare engine has only the global site 0)
        self._site_seq: list[int] = [0]
        self._running = False
        self._stopped = False
        self.events_executed: int = 0
        #: Optional hard event-count limit, a guard against runaway models.
        self.max_events: int | None = None

    def ensure_sites(self, count: int) -> None:
        """Grow the per-site counter table to at least ``count`` sites."""
        seqs = self._site_seq
        if count > len(seqs):
            seqs.extend([0] * (count - len(seqs)))

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        payload: Any = None,
        priority: int = 10,
        site: int = 0,
    ) -> None:
        """Schedule ``action(payload)`` to run ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        seqs = self._site_seq
        k = seqs[site] + 1
        seqs[site] = k
        heapq.heappush(
            self._heap, [self.now + delay, priority, site, k, action, payload]
        )

    def after(
        self,
        delay: float,
        action: Callable[..., Any],
        payload: Any = None,
        priority: int = 10,
        site: int = 0,
    ) -> None:
        """:meth:`schedule` minus the negative-delay guard.

        The kernel-internal fast path: callers (PE executors, channels,
        word transport) derive delays from validated non-negative costs,
        so the branch would never fire.  A negative delay here corrupts
        the calendar silently — external/model code must use
        :meth:`schedule`.
        """
        seqs = self._site_seq
        k = seqs[site] + 1
        seqs[site] = k
        heapq.heappush(
            self._heap, [self.now + delay, priority, site, k, action, payload]
        )

    def tick(
        self,
        interval: float,
        fn: Callable[[], Any],
        offset: float = 0.0,
        *,
        name: str = "",
        skip_first: bool = False,
        priority: int = 10,
        site: int = 0,
    ) -> Tick:
        """Run ``fn()`` every ``interval`` units, first at ``now + offset``.

        Returns the :class:`Tick`, whose one heap entry is recycled every
        period.  ``skip_first=True`` makes the firing at ``offset`` a
        silent reschedule — the shape of a generator body that starts
        with ``yield hold(interval)`` (samplers, broadcasters), where the
        registration event primes the loop without sampling at t=0.
        """
        if interval <= 0:
            raise SimulationError(f"tick interval must be positive (got {interval!r})")
        if offset < 0:
            raise SimulationError(f"cannot tick into the past (offset={offset!r})")
        tick = Tick(self, interval, fn, name, skip_first, site)
        seqs = self._site_seq
        k = seqs[site] + 1
        seqs[site] = k
        entry = [self.now + offset, priority, site, k, tick._fire, None]
        tick._entry = entry
        heapq.heappush(self._heap, entry)
        return tick

    def _schedule_process(self, delay: float, proc: Process) -> None:
        site = proc.site
        seqs = self._site_seq
        k = seqs[site] + 1
        seqs[site] = k
        heapq.heappush(self._heap, [self.now + delay, 10, site, k, proc, None])

    def _schedule_resume(self, proc: Process, payload: Any) -> None:
        site = proc.site
        seqs = self._site_seq
        k = seqs[site] + 1
        seqs[site] = k
        heapq.heappush(self._heap, [self.now, 10, site, k, proc, payload])

    def process(
        self, gen: Generator, name: str = "", delay: float = 0.0, site: int = 0
    ) -> Process:
        """Register a generator as a process; it first runs ``delay`` from now."""
        proc = Process(self, gen, name, site)
        self._schedule_process(delay, proc)
        return proc

    # -- execution -----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains, :meth:`stop` is called, or the
        clock passes ``until``.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still fire.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        # Hot loop: locals for everything invariant across events.  The
        # event counter is flushed in ``finally`` so `events_executed`
        # stays correct on stop(), limit overrun, and model exceptions.
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        proc_cls = Process
        limit = self.max_events
        if limit is None:
            limit = float("inf")
        executed = self.events_executed
        try:
            if until is None:
                while heap and not self._stopped:
                    entry = pop(heap)
                    self.now = entry[0]
                    executed += 1
                    if executed > limit:
                        raise SimulationError(
                            f"event limit exceeded ({self.max_events}); "
                            "likely a runaway model"
                        )
                    action = entry[4]
                    if type(action) is proc_cls:
                        if action.alive:
                            action._step(entry[5])
                    else:
                        action(entry[5])
            else:
                while heap and not self._stopped:
                    entry = pop(heap)
                    time = entry[0]
                    if time > until:
                        # Put it back: a later run() call may continue here.
                        push(heap, entry)
                        self.now = until
                        break
                    self.now = time
                    executed += 1
                    if executed > limit:
                        raise SimulationError(
                            f"event limit exceeded ({self.max_events}); "
                            "likely a runaway model"
                        )
                    action = entry[4]
                    if type(action) is proc_cls:
                        if action.alive:
                            action._step(entry[5])
                    else:
                        action(entry[5])
        finally:
            self.events_executed = executed
            self._running = False
        return self.now

    def step(self) -> bool:
        """Execute a single event; return False if the calendar is empty.

        Honors the same guards as :meth:`run`: a stopped engine stays
        stopped (``step()`` returns False instead of silently reviving
        the run), and the ``max_events`` runaway limit still raises.
        """
        if not self._heap or self._stopped:
            return False
        entry = heapq.heappop(self._heap)
        self.now = entry[0]
        self.events_executed += 1
        if self.max_events is not None and self.events_executed > self.max_events:
            raise SimulationError(
                f"event limit exceeded ({self.max_events}); likely a runaway model"
            )
        action = entry[4]
        if type(action) is Process:
            if action.alive:
                action._step(entry[5])
        else:
            action(entry[5])
        return True

    def peek(self) -> float | None:
        """Time of the next pending event, or None if the calendar is empty."""
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of events currently on the calendar."""
        return len(self._heap)

    def stop(self) -> None:
        """End the run after the current event completes.

        Unlike :meth:`clear`, stopping is sticky: events scheduled *by*
        the in-flight event (or by processes resumed later in the same
        timestep) do not restart execution, and :meth:`step` refuses to
        single-step a stopped engine.  This is how a simulation declares
        "the answer is in" while strategy machinery — periodic gradient
        wakeups, steal retries — would otherwise keep seeding the
        calendar forever.
        """
        self._stopped = True

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has been called."""
        return self._stopped

    def clear(self) -> None:
        """Drop all pending events (used between experiment repetitions)."""
        self._heap.clear()


def drain(engine: Engine, signals: Iterable[Signal]) -> None:
    """Fire a set of signals so no process is left waiting (test helper)."""
    for sig in signals:
        sig.fire(None)
