"""String-keyed plugin registries behind the ``make`` factories.

Every construction vocabulary in this library — strategies, topologies,
workloads — used to be a closed ``if kind == ...`` chain inside its
package's ``make`` function.  :class:`Registry` replaces those chains
with an open table: each spec *kind* (the part before the first ``:``)
maps to an :class:`Entry` holding

* a **builder** — parses the parameter part of the spec string and
  returns the constructed object;
* an optional **speller** — the inverse mapping, dispatched on the
  object's exact type, producing the canonical spec string the parallel
  farm's content-addressed cache keys on;
* **metadata** — open key/value annotations; the built-in entries carry
  a one-line ``summary``, a constructible ``example`` spec, and (for the
  paper's competitors) the Table-1 ``table1`` per-family parameters.

Registering a new kind is one decorator anywhere in the process::

    from repro.scenario import STRATEGIES

    @STRATEGIES.register("mystrat", cls=MyStrategy,
                         spell=lambda s: "mystrat",
                         metadata={"summary": "...", "example": "mystrat"})
    def _build(rest, family="grid"):
        return MyStrategy()

and the name is instantly understood by ``make_strategy``, every
:class:`~repro.scenario.Scenario`, the plan/farm pipeline, and the CLI
(``repro list`` / ``repro run``).  Out-of-tree packages register
through ``entry_points`` instead: expose a callable under the
registry's group (``repro.strategies``, ``repro.topologies``,
``repro.workloads``) and it is invoked with the registry the first
time an unknown name is looked up (or the names are listed).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Mapping

__all__ = ["Entry", "Registry"]


@dataclass(frozen=True)
class Entry:
    """One registered spec kind (see :class:`Registry`)."""

    name: str
    builder: Callable[..., Any]
    #: exact type the speller applies to (``spec_of`` dispatch key)
    cls: type | None = None
    #: object -> canonical spec string (raises ValueError when the
    #: object carries parameters the grammar cannot express)
    spell: Callable[[Any], str] | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "metadata", MappingProxyType(dict(self.metadata)))


class Registry:
    """An open, string-keyed factory: spec kind -> :class:`Entry`.

    ``kind_label`` names the vocabulary in error messages ("strategy",
    "topology", "workload"); ``entry_point_group`` optionally names an
    ``importlib.metadata`` entry-point group scanned (once, lazily) for
    out-of-tree registrations.
    """

    def __init__(self, kind_label: str, entry_point_group: str | None = None) -> None:
        self.kind_label = kind_label
        self.entry_point_group = entry_point_group
        self._entries: dict[str, Entry] = {}
        self._discovered = entry_point_group is None

    # -- registration ------------------------------------------------------------

    def register(
        self,
        name: str,
        *,
        cls: type | None = None,
        spell: Callable[[Any], str] | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register the wrapped builder under ``name``.

        The builder receives the spec's parameter part (everything after
        the first ``:``, possibly empty) plus whatever context keywords
        the factory passes through (strategies get ``family=``).
        """

        def _decorate(builder: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, builder, cls=cls, spell=spell, metadata=metadata)
            return builder

        return _decorate

    def add(
        self,
        name: str,
        builder: Callable[..., Any],
        *,
        cls: type | None = None,
        spell: Callable[[Any], str] | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> Entry:
        """Imperative form of :meth:`register`; returns the new entry."""
        key = name.strip().lower()
        if not key:
            raise ValueError(f"{self.kind_label} name must be non-empty")
        if key in self._entries:
            raise ValueError(
                f"{self.kind_label} {key!r} is already registered; "
                f"remove() it first to replace"
            )
        entry = Entry(key, builder, cls=cls, spell=spell, metadata=metadata or {})
        self._entries[key] = entry
        return entry

    def remove(self, name: str) -> None:
        """Unregister ``name`` (mainly for tests and plugin teardown)."""
        del self._entries[name.strip().lower()]

    # -- lookup ------------------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """Every registered kind, sorted (entry points included)."""
        self._discover()
        return tuple(sorted(self._entries))

    def entry(self, name: str, *, spec: str | None = None) -> Entry:
        """The entry for ``name``; unknown names get the rich error.

        ``spec`` optionally names the full spec string the lookup came
        from, for the error message (:meth:`make` passes it).
        """
        key = name.strip().lower()
        found = self._entries.get(key)
        if found is None:
            self._discover()
            found = self._entries.get(key)
        if found is None:
            raise ValueError(self._unknown_message(key, spec=spec if spec is not None else name))
        return found

    def metadata(self, name: str) -> Mapping[str, Any]:
        """The metadata mapping registered for ``name``."""
        return self.entry(name).metadata

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = name.strip().lower()
        if key not in self._entries:
            self._discover()
        return key in self._entries

    # -- construction ------------------------------------------------------------

    def make(self, spec: str, **context: Any) -> Any:
        """Build an object from ``"kind"`` or ``"kind:params"``.

        Unknown kinds raise :class:`ValueError` listing the registered
        names and the nearest match; builder failures are wrapped as
        ``malformed <kind> spec`` with the original cause preserved.
        """
        kind, _, rest = spec.partition(":")
        found = self.entry(kind, spec=spec)
        try:
            return found.builder(rest, **context)
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"malformed {self.kind_label} spec {spec!r}: {exc}") from exc

    def spec_of(self, obj: Any) -> str:
        """The canonical spec string that rebuilds ``obj`` (by exact type).

        Raises :class:`ValueError` for unregistered types and for objects
        whose parameters the spec grammar cannot express.
        """
        self._discover()
        for entry in self._entries.values():
            if entry.cls is not None and type(obj) is entry.cls and entry.spell is not None:
                return entry.spell(obj)
        raise ValueError(f"no spec-string syntax for {type(obj).__name__}")

    # -- diagnostics and discovery -----------------------------------------------

    def _unknown_message(self, kind: str, spec: str) -> str:
        known = ", ".join(sorted(self._entries)) or "(none)"
        msg = (
            f"unknown {self.kind_label} {kind!r} in spec {spec!r}; "
            f"registered: {known}"
        )
        close = difflib.get_close_matches(kind, list(self._entries), n=1)
        if close:
            msg += f" — did you mean {close[0]!r}?"
        return msg

    def _discover(self) -> None:
        """Scan the entry-point group once for out-of-tree plugins.

        Each entry point must resolve to a callable, which is invoked
        with this registry; a plugin that fails to load is skipped (a
        broken third-party package must not take the factories down).
        """
        if self._discovered:
            return
        self._discovered = True
        try:
            from importlib.metadata import entry_points

            points = entry_points(group=self.entry_point_group)
        except Exception:  # pragma: no cover - metadata backend quirks
            return
        for point in points:
            try:
                hook = point.load()
                if callable(hook):
                    hook(self)
            except Exception:  # pragma: no cover - third-party failure
                continue
