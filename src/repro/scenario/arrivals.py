"""The open-system arrival block, as one value.

``queries`` / ``arrival_spacing`` / ``arrival_pes`` / ``arrival_times``
used to be four loose knobs re-plumbed (and re-validated, and
re-``None if x is None else list(x)``-ed) through every layer that
touches a run: ``Machine.__init__``, ``build_machine``, ``simulate``,
``RunSpec``, ``planned_run``.  :class:`Arrivals` collapses them into a
single frozen, hashable value with the validation in exactly one place.

The default instance (one query, injected at the scenario's
``start_pe`` at time 0) is the paper's closed-system run; anything else
turns the machine into an open system — see
:class:`~repro.oracle.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

__all__ = ["Arrivals"]


@dataclass(frozen=True)
class Arrivals:
    """How query instances of the program enter the machine.

    Attributes
    ----------
    queries:
        Number of program instances injected (1 = the paper's closed
        system).
    spacing:
        Uniform inter-arrival time: query *k* arrives at ``k * spacing``.
        Mutually exclusive with ``times``.
    pes:
        Injection PE per query (default: every query at the scenario's
        ``start_pe``).
    times:
        Explicit injection time per query (e.g. a pre-drawn Poisson
        process), overriding the uniform spacing.
    """

    queries: int = 1
    spacing: float = 0.0
    pes: tuple[int, ...] | None = None
    times: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        # Normalize any sequence spelling to tuples so every Arrivals is
        # hashable and sequence-type differences cannot split cache keys.
        if self.pes is not None:
            object.__setattr__(self, "pes", tuple(int(p) for p in self.pes))
        if self.times is not None:
            object.__setattr__(self, "times", tuple(float(t) for t in self.times))
        if self.queries < 1:
            raise ValueError("queries must be >= 1")
        if self.spacing < 0:
            raise ValueError("arrival_spacing must be >= 0")
        if self.pes is not None and len(self.pes) != self.queries:
            raise ValueError(
                f"arrival_pes has {len(self.pes)} entries for {self.queries} queries"
            )
        if self.times is not None:
            if self.spacing != 0.0:
                raise ValueError("pass arrival_times or arrival_spacing, not both")
            if len(self.times) != self.queries:
                raise ValueError(
                    f"arrival_times has {len(self.times)} entries for {self.queries} queries"
                )
            if any(t < 0 for t in self.times):
                raise ValueError("arrival_times must be non-negative")

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_args(
        cls,
        queries: int = 1,
        spacing: float = 0.0,
        pes: Sequence[int] | None = None,
        times: Sequence[float] | None = None,
    ) -> "Arrivals":
        """The four legacy keyword arguments, normalized into one value."""
        return cls(queries, spacing, pes, times)  # type: ignore[arg-type]

    @classmethod
    def resolve(
        cls,
        arrivals: "Arrivals | None",
        queries: int = 1,
        spacing: float = 0.0,
        pes: Sequence[int] | None = None,
        times: Sequence[float] | None = None,
    ) -> "Arrivals":
        """One arrival block from either spelling, never both.

        Every entry point that accepts both a bundled ``arrivals=`` and
        the four legacy knobs (``Machine``, ``Scenario.of``) funnels
        through here, so the mutual-exclusion rule lives once.
        """
        if arrivals is None:
            return cls.from_args(queries, spacing, pes, times)
        if queries != 1 or spacing != 0.0 or pes is not None or times is not None:
            raise ValueError("pass arrivals= or the legacy arrival knobs, not both")
        return arrivals

    # -- properties --------------------------------------------------------------

    @property
    def is_default(self) -> bool:
        """True for the closed-system default (single query at time 0).

        Default arrivals are omitted from canonical dicts entirely, so
        every pre-existing single-query content hash (and the cache
        entries addressed by it) stays valid.
        """
        return self.queries == 1 and self.pes is None and self.times is None

    def check_pes(self, n_pes: int) -> None:
        """Validate the injection PEs against a machine of ``n_pes``."""
        if self.pes is not None and not all(0 <= pe < n_pes for pe in self.pes):
            raise ValueError("arrival_pes entries must be valid PE indices")

    # -- canonical form ----------------------------------------------------------

    def canonical(self) -> "Arrivals":
        """The unique representative of this block's equivalence class.

        With one query and no explicit times, the spacing is never read
        (query 0 arrives at 0 regardless) — zero it so it cannot split
        content hashes.  ``pes`` stays: the machine injects even a
        single query at ``pes[0]``.
        """
        if self.queries == 1 and self.times is None and self.spacing != 0.0:
            return replace(self, spacing=0.0)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``arrivals`` block of canonical dicts)."""
        return {
            "queries": self.queries,
            "spacing": self.spacing,
            "pes": None if self.pes is None else list(self.pes),
            "times": None if self.times is None else list(self.times),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Arrivals":
        """Inverse of :meth:`to_dict`."""
        return cls(
            queries=int(data.get("queries", 1)),
            spacing=float(data.get("spacing", 0.0)),
            pes=data.get("pes"),
            times=data.get("times"),
        )
