"""`Scenario` — one simulation run as the library's single currency.

A scenario bundles everything the paper's cross-product sweeps over:
the workload, the topology, the strategy, the cost model / simulation
config, the injection point and seed, and the open-system arrival block
(:class:`~repro.scenario.arrivals.Arrivals`).  Each of the three main
parts may be a live object or a factory spec string — the registries
(:data:`repro.core.STRATEGIES`, :data:`repro.topology.TOPOLOGIES`,
:data:`repro.workload.WORKLOADS`) translate freely between the two.

One value, four consumers:

* ``Scenario.build()`` / ``Scenario.run()`` — construct the wired
  :class:`~repro.oracle.machine.Machine` / run it (``simulate`` and
  ``build_machine`` are now thin shims over these);
* :class:`~repro.parallel.spec.RunSpec` — the farm's picklable form is
  ``RunSpec.from_scenario(sc)``, and every content hash is
  ``Scenario.content_hash()`` (so pre-Scenario warm caches keep
  hitting);
* :class:`~repro.experiments.plan.ExperimentPlan` — plans are built
  from and emit scenarios;
* the CLI — ``repro run "fib:15 @ grid:8x8 / cwn?seed=3"`` parses the
  compact **spec grammar**::

      <workload> @ <topology> / <strategy> [?key=value[&key=value...]]

  with override keys ``seed``, ``start`` (injection PE), ``queries``,
  ``spacing``, ``pes`` / ``times`` (``;``-separated), plus
  ``cfg.<field>`` and ``cost.<field>`` for any scalar
  :class:`~repro.oracle.config.SimConfig` / ``CostModel`` field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from .._spec_util import fmt_num
from ..oracle.config import SimConfig
from .arrivals import Arrivals

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import Strategy
    from ..oracle.machine import Machine
    from ..oracle.stats import SimResult
    from ..topology.base import Topology
    from ..workload.base import Program

__all__ = ["SPEC_SCHEMA", "Scenario"]

#: Version tag baked into every canonical dict (and hence every content
#: hash and cache path).  Bump it whenever simulation semantics change
#: in a way that invalidates previously computed results.
SPEC_SCHEMA = 1

#: fixed emission order of the scenario-level override keys
_SCENARIO_KEYS = ("seed", "start", "queries", "spacing", "pes", "times")


def _split_ints(raw: str) -> tuple[int, ...]:
    return tuple(int(v) for v in raw.split(";") if v != "")

def _split_floats(raw: str) -> tuple[float, ...]:
    return tuple(float(v) for v in raw.split(";") if v != "")


@dataclass(frozen=True)
class Scenario:
    """One run of the simulator, as a frozen value.

    ``workload`` / ``topology`` / ``strategy`` hold either registry spec
    strings or live objects; everything that needs strings
    (serialization, hashing, the farm) goes through :meth:`spelled`,
    which spells objects via the registries' ``spec_of`` — objects the
    spec grammar cannot express raise :class:`ValueError` there, and
    callers (the plan pipeline) degrade to in-process execution.
    """

    workload: "Program | str"
    topology: "Topology | str"
    strategy: "Strategy | str"
    config: SimConfig = field(default_factory=SimConfig)
    seed: int | None = None
    start_pe: int = 0
    arrivals: Arrivals = field(default_factory=Arrivals)

    # -- construction ------------------------------------------------------------

    @classmethod
    def of(
        cls,
        workload: "Program | str",
        topology: "Topology | str",
        strategy: "Strategy | str",
        config: SimConfig | None = None,
        seed: int | None = None,
        start_pe: int = 0,
        queries: int = 1,
        arrival_spacing: float = 0.0,
        arrival_pes: Sequence[int] | None = None,
        arrival_times: Sequence[float] | None = None,
        arrivals: Arrivals | None = None,
    ) -> "Scenario":
        """Keyword-compatible constructor (mirrors the legacy ``simulate``).

        The four legacy arrival knobs and the bundled ``arrivals`` value
        are alternatives; passing both is a :class:`ValueError`.
        """
        arrivals = Arrivals.resolve(
            arrivals, queries, arrival_spacing, arrival_pes, arrival_times
        )
        return cls(workload, topology, strategy, config or SimConfig(), seed, start_pe, arrivals)

    # -- resolution and execution ------------------------------------------------

    def resolve_workload(self) -> "Program":
        """The live :class:`~repro.workload.base.Program`."""
        if isinstance(self.workload, str):
            from ..workload import make as make_workload

            return make_workload(self.workload)
        return self.workload

    def resolve_topology(self) -> "Topology":
        """The live :class:`~repro.topology.base.Topology`."""
        if isinstance(self.topology, str):
            from ..topology import make as make_topology

            return make_topology(self.topology)
        return self.topology

    def resolve_strategy(self, family: str | None = None) -> "Strategy":
        """The live strategy; bare names pick up the paper's Table-1
        parameters for ``family`` (default: this scenario's topology's)."""
        if isinstance(self.strategy, str):
            from ..core import make_strategy

            if family is None:
                family = self.resolve_topology().family
            return make_strategy(self.strategy, family=family)
        return self.strategy

    @property
    def effective_config(self) -> SimConfig:
        """``config`` with the ``seed`` override folded in."""
        if self.seed is None:
            return self.config
        return self.config.replace(seed=self.seed)

    def seeded(self, default: int = 1) -> "Scenario":
        """This scenario with ``default`` as the seed when none was given.

        The CLI's default-seed rule, shared with ``repro serve``: a
        scenario that names no seed anywhere (no ``--seed``, no
        ``?seed=``/``?cfg.seed=`` spec override) runs with seed
        ``default``, so the two fronts hash — and answer — identically.
        """
        if self.seed is None and self.config.seed == 0:
            return replace(self, seed=default)
        return self

    def build(self) -> "Machine":
        """Construct (but do not run) the fully wired machine."""
        from ..oracle.machine import Machine

        workload = self.resolve_workload()
        topology = self.resolve_topology()
        strategy = self.resolve_strategy(family=topology.family)
        return Machine(
            topology,
            workload,
            strategy,
            self.effective_config,
            self.start_pe,
            arrivals=self.arrivals,
        )

    def run(self) -> "SimResult":
        """Run this scenario to completion in the current process."""
        return self.build().run()

    # -- spelling ----------------------------------------------------------------

    def spelled(self) -> "Scenario":
        """This scenario with all three parts as factory spec strings.

        Objects are spelled by the registries' ``spec_of``; objects the
        grammar cannot express raise :class:`ValueError`.
        """
        workload, topology, strategy = self.workload, self.topology, self.strategy
        if not isinstance(workload, str):
            from ..workload import spec_of as workload_spec

            workload = workload_spec(workload)
        if not isinstance(topology, str):
            from ..topology import spec_of as topology_spec

            topology = topology_spec(topology)
        if not isinstance(strategy, str):
            from ..core import spec_of as strategy_spec

            strategy = strategy_spec(strategy)
        if (workload, topology, strategy) == (self.workload, self.topology, self.strategy):
            return self
        return replace(self, workload=workload, topology=topology, strategy=strategy)

    def label(self) -> str:
        """Human-readable one-liner (progress and error messages)."""
        def part(value: Any) -> str:
            if isinstance(value, str):
                return value
            try:
                return type(value).__name__
            except Exception:  # pragma: no cover - exotic objects
                return repr(value)

        return f"{part(self.workload)} @ {part(self.topology)} / {part(self.strategy)}"

    # -- canonical form and hashing ----------------------------------------------

    def canonical(self) -> "Scenario":
        """The unique representative of this scenario's equivalence class.

        All three parts are normalized to canonical spec strings (the
        strategy against the topology's family, so bare ``"cwn"``
        resolves to the same explicit parameters :meth:`build` gives
        it), the seed override is folded into the config, and the
        arrival block is canonicalized.
        """
        from ..core import canonical_spec as canonical_strategy
        from ..topology import canonical_spec as canonical_topology, make as make_topology
        from ..workload import canonical_spec as canonical_workload

        spelled = self.spelled()
        topology = canonical_topology(spelled.topology)
        family = make_topology(topology).family
        return replace(
            spelled,
            workload=canonical_workload(spelled.workload),
            topology=topology,
            strategy=canonical_strategy(spelled.strategy, family=family),
            config=self.effective_config,
            seed=None,
            arrivals=self.arrivals.canonical(),
        )

    def canonical_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form — the preimage of :meth:`content_hash`.

        Canonicalization re-parses every spec string (it even builds the
        topology to resolve the strategy family), so the result is
        memoized on the instance — the cache consults it several times
        per run, and the fields it derives from are frozen.

        The layout is byte-compatible with the pre-Scenario ``RunSpec``
        canonical form: default arrivals are omitted entirely, so every
        previously computed content hash — and the warm cache entries
        addressed by it — stays valid.
        """
        cached = self.__dict__.get("_canonical_dict")
        if cached is None:
            spec = self.canonical()
            cached = {
                "schema": SPEC_SCHEMA,
                "workload": spec.workload,
                "topology": spec.topology,
                "strategy": spec.strategy,
                "config": spec.config.to_dict(),
                "start_pe": spec.start_pe,
            }
            if not spec.arrivals.is_default:
                cached["arrivals"] = spec.arrivals.to_dict()
            object.__setattr__(self, "_canonical_dict", cached)
        return cached

    def content_hash(self) -> str:
        """Content-address: SHA-256 of the canonical form (memoized).

        Stable across processes and sessions (no hash randomization is
        involved), and identical for every spelling of the same run —
        this is the key the farm's :class:`~repro.parallel.cache.ResultCache`
        stores results under.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            payload = json.dumps(
                self.canonical_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    # -- the spec grammar --------------------------------------------------------

    @property
    def spec(self) -> str:
        """The canonical one-line spelling of this scenario.

        ``"<workload> @ <topology> / <strategy>"`` plus a ``?key=value``
        override block for every non-default knob, in a fixed order, so
        equal scenarios produce equal strings and
        ``Scenario.from_spec(sc.spec)`` hashes identically to ``sc``.
        Raises :class:`ValueError` for parameters the grammar cannot
        express (custom objects, ``pe_speeds``).
        """
        spec = self.canonical()
        overrides: list[tuple[str, str]] = []
        cfg = dict(spec.config.spec_overrides())
        seed = cfg.pop("cfg.seed", None)
        if seed is not None:
            overrides.append(("seed", seed))
        if spec.start_pe != 0:
            overrides.append(("start", str(spec.start_pe)))
        arrivals = spec.arrivals
        if arrivals.queries != 1:
            overrides.append(("queries", str(arrivals.queries)))
        if arrivals.spacing != 0.0:
            overrides.append(("spacing", fmt_num(arrivals.spacing)))
        if arrivals.pes is not None:
            overrides.append(("pes", ";".join(str(p) for p in arrivals.pes)))
        if arrivals.times is not None:
            overrides.append(("times", ";".join(fmt_num(t) for t in arrivals.times)))
        overrides.extend(sorted(cfg.items()))
        text = f"{spec.workload} @ {spec.topology} / {spec.strategy}"
        if overrides:
            text += "?" + "&".join(f"{k}={v}" for k, v in overrides)
        return text

    @classmethod
    def from_spec(cls, text: str) -> "Scenario":
        """Parse the spec grammar (see the module docstring).

        The three parts are kept as-spelled (canonicalization is a
        separate, explicit step), so ``from_spec`` is cheap and the
        original spelling survives round trips through :meth:`to_dict`.
        """
        main, _, query = text.partition("?")
        left, slash, strategy = main.rpartition("/")
        workload, at, topology = left.partition("@")
        workload, topology, strategy = workload.strip(), topology.strip(), strategy.strip()
        if not slash or not at or not workload or not topology or not strategy:
            raise ValueError(
                f"malformed scenario spec {text!r}; expected "
                f"'<workload> @ <topology> / <strategy>[?key=value&...]' "
                f"e.g. 'fib:15 @ grid:8x8 / cwn?seed=3'"
            )
        seed: int | None = None
        start_pe = 0
        queries = 1
        spacing = 0.0
        pes: tuple[int, ...] | None = None
        times: tuple[float, ...] | None = None
        cfg_overrides: dict[str, str] = {}
        if query:
            for item in query.split("&"):
                key, eq, raw = item.partition("=")
                key = key.strip()
                raw = raw.strip()
                if not eq or not key:
                    raise ValueError(
                        f"malformed scenario override {item!r} in {text!r} "
                        f"(expected key=value)"
                    )
                if key.startswith(("cfg.", "cost.")):
                    cfg_overrides[key] = raw
                elif key == "seed":
                    seed = int(raw)
                elif key == "start":
                    start_pe = int(raw)
                elif key == "queries":
                    queries = int(raw)
                elif key == "spacing":
                    spacing = float(raw)
                elif key == "pes":
                    pes = _split_ints(raw)
                elif key == "times":
                    times = _split_floats(raw)
                else:
                    import difflib

                    known = ", ".join(_SCENARIO_KEYS)
                    msg = (
                        f"unknown scenario override {key!r} in {text!r}; "
                        f"known: {known}, plus cfg.<field> / cost.<field> "
                        f"for SimConfig / CostModel fields"
                    )
                    close = difflib.get_close_matches(key, _SCENARIO_KEYS, n=1)
                    if close:
                        msg += f" — did you mean {close[0]!r}?"
                    raise ValueError(msg)
        config = SimConfig().with_spec_overrides(cfg_overrides)
        # A seed spelled as cfg.seed= is promoted to the scenario-level
        # seed (the fold in effective_config is a no-op on the same
        # value), so consumers that test `scenario.seed is None` — the
        # CLI's default-seed rule — see every explicit spelling,
        # including cfg.seed=0.
        if seed is None and "cfg.seed" in cfg_overrides:
            seed = config.seed
        return cls(
            workload,
            topology,
            strategy,
            config,
            seed,
            start_pe,
            Arrivals(queries, spacing, pes, times),
        )

    # -- plain serialization (non-canonicalizing) --------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Round-trippable JSON-able form, exactly as spelled.

        Objects are spelled into spec strings (raising for parameters
        the grammar cannot express); nothing is canonicalized.
        """
        spelled = self.spelled()
        return {
            "workload": spelled.workload,
            "topology": spelled.topology,
            "strategy": spelled.strategy,
            "config": self.config.to_dict(),
            "seed": self.seed,
            "start_pe": self.start_pe,
            "arrivals": self.arrivals.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            topology=data["topology"],
            strategy=data["strategy"],
            config=SimConfig.from_dict(dict(data["config"])),
            seed=data.get("seed"),
            start_pe=int(data.get("start_pe", 0)),
            arrivals=Arrivals.from_dict(data.get("arrivals") or {}),
        )
