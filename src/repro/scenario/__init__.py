"""``repro.scenario`` — the run-description currency and its registries.

* :class:`Scenario` — one simulation run as a frozen value (workload +
  topology + strategy + config + seed/start + arrival block), with a
  compact spec grammar (``"fib:15 @ grid:8x8 / cwn?seed=3"``), stable
  content hashing, and ``build()`` / ``run()`` execution;
* :class:`Arrivals` — the open-system arrival block as one value;
* :class:`Registry` — the string-keyed plugin registry behind the three
  ``make`` factories; the live instances are re-exported here as
  :data:`STRATEGIES`, :data:`TOPOLOGIES` and :data:`WORKLOADS`.

This package sits *below* :mod:`repro.core` / :mod:`repro.topology` /
:mod:`repro.workload` (they import the registry machinery) and *above*
them (``Scenario`` resolves spec strings through their registries), so
the heavyweight names are exported lazily (:pep:`562`) to keep the
import graph acyclic.
"""

from __future__ import annotations

from typing import Any

from .arrivals import Arrivals
from .registry import Entry, Registry

__all__ = [
    "Arrivals",
    "Entry",
    "Registry",
    "SPEC_SCHEMA",
    "STRATEGIES",
    "Scenario",
    "TOPOLOGIES",
    "WORKLOADS",
]

#: lazy exports (PEP 562): "name" -> (module, attribute)
_LAZY = {
    "Scenario": (".scenario", "Scenario"),
    "SPEC_SCHEMA": (".scenario", "SPEC_SCHEMA"),
    "STRATEGIES": ("..core", "STRATEGIES"),
    "TOPOLOGIES": ("..topology", "TOPOLOGIES"),
    "WORKLOADS": ("..workload", "WORKLOADS"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    value = getattr(import_module(module, __name__), attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
