"""``repro bench``: the perf-trajectory harness.

Every performance claim in this reproduction's history — the 1.78x
callback-kernel win, the 6 s → 15 ms closed-form machine construction —
used to live only in commit messages.  This harness makes the trajectory
a first-class artifact: it runs the canonical benches and writes a
schema-versioned ``BENCH_<n>.json`` at the repo root, one per PR, and
``repro bench --compare BENCH_prev.json`` exits nonzero when a metric
regresses beyond a tolerance factor — the CI perf gate.

Canonical benches (quick mode shrinks repeats, not coverage):

* **kernel** — raw calendar schedule-and-fire throughput, plus the
  end-to-end fib(13) @ Grid(8,8) / CWN events/s that PR 3 optimized;
* **construction** — wall-clock ms to wire a full Machine around
  Grid(64,64) and Hypercube(12), the closed-form-routing win of PR 4;
* **farm** — cold-cache batch throughput through
  :func:`repro.parallel.run_batch` and the warm-rerun cache hit rate
  (which must be 1.0: a warm rerun simulates nothing);
* **serve** — the scenario service end to end: cold requests/s through
  a warm 2-worker fleet, warm-dedup requests/s (every request answered
  from the shared cache without touching the fleet), and the replay
  harness's p50/p99 latency on a fixed mixed stream;
* **pdes** — one large machine through the conservative parallel
  engine (:func:`repro.pdes.run_sharded`, 4 shards) against the same
  scenario serial, plus the speedup ratio.  On a single-core host the
  ratio is honest and < 1 — four workers time-slice one CPU and pay
  the window-barrier IPC on top; the metric exists to track the
  trajectory on real multi-core hardware.

All metrics carry a ``higher_is_better`` direction so the comparison is
mechanical; timings use best-of-N to shed scheduler noise.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from . import telemetry as _telemetry

__all__ = [
    "BENCH_NUMBER",
    "BENCH_SCHEMA",
    "Metric",
    "compare_metrics",
    "default_bench_path",
    "load_bench",
    "run_benches",
    "write_bench",
]

#: Version of the BENCH_*.json payload layout.
BENCH_SCHEMA = 1

#: This PR's trajectory point: ``repro bench`` writes ``BENCH_10.json``.
BENCH_NUMBER = 10


@dataclass(frozen=True)
class Metric:
    """One benchmark measurement with its comparison direction."""

    value: float
    unit: str
    higher_is_better: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Metric":
        return cls(
            value=float(data["value"]),
            unit=str(data["unit"]),
            higher_is_better=bool(data["higher_is_better"]),
        )


def _best_seconds(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Minimum wall-clock over ``repeats`` calls, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# -- the canonical benches -------------------------------------------------------

def bench_kernel(quick: bool = False) -> dict[str, Metric]:
    """Calendar and end-to-end simulator throughput (events/s)."""
    from repro.core import CWN
    from repro.oracle.config import SimConfig
    from repro.oracle.engine import Engine
    from repro.oracle.machine import Machine
    from repro.topology import Grid
    from repro.workload import Fibonacci

    repeats = 2 if quick else 5

    count = 20_000 if quick else 50_000

    def calendar() -> Engine:
        engine = Engine()
        for i in range(count):
            engine.schedule(float(i % 97), lambda _: None)
        engine.run()
        return engine

    cal_s, engine = _best_seconds(calendar, repeats)

    def end_to_end():
        return Machine(
            Grid(8, 8), Fibonacci(13), CWN(radius=5, horizon=1), SimConfig(seed=1)
        ).run()

    sim_s, result = _best_seconds(end_to_end, repeats)
    assert result.result_value == 233, "kernel bench computed the wrong fib(13)"
    return {
        "calendar_events_per_s": Metric(engine.events_executed / cal_s, "events/s"),
        "kernel_events_per_s": Metric(result.events_executed / sim_s, "events/s"),
    }


def bench_construction(quick: bool = False) -> dict[str, Metric]:
    """Machine-construction latency on the PR-4 flagship shapes (ms)."""
    from repro.core import paper_cwn
    from repro.oracle.config import SimConfig
    from repro.oracle.machine import Machine
    from repro.topology import Grid, Hypercube
    from repro.workload import Fibonacci

    repeats = 2 if quick else 5
    metrics: dict[str, Metric] = {}
    for key, make in (
        ("grid64x64_construct_ms", lambda: Grid(64, 64)),
        ("hypercube12_construct_ms", lambda: Hypercube(12)),
    ):
        def build():
            topology = make()
            return Machine(
                topology, Fibonacci(12), paper_cwn(topology.family), SimConfig(seed=1)
            )

        seconds, _machine = _best_seconds(build, repeats)
        metrics[key] = Metric(seconds * 1000.0, "ms", higher_is_better=False)
    # The floor for the PR 7 constructor trim: Hypercube(12) wires 3x
    # the channels of a same-PE-count grid, so parity is not expected —
    # but the ratio must stay bounded, machine-independently (both
    # sides run on this host, so the ratio cancels CPU speed).
    metrics["hypercube12_over_grid64_construct_ratio"] = Metric(
        metrics["hypercube12_construct_ms"].value
        / metrics["grid64x64_construct_ms"].value,
        "ratio",
        higher_is_better=False,
    )
    return metrics


def bench_farm(quick: bool = False) -> dict[str, Metric]:
    """Batch throughput cold, and the warm-rerun hit rate (must be 1.0)."""
    from repro.parallel import ResultCache, RunSpec, run_batch

    n_specs = 4 if quick else 8
    specs = [
        RunSpec.build("fib:11", "grid:4x4", "cwn", seed=seed)
        for seed in range(1, n_specs + 1)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        cache = ResultCache(root)
        start = time.perf_counter()
        cold = run_batch(specs, jobs=2, cache=cache)
        cold_s = time.perf_counter() - start
        assert cold.simulated == n_specs, "cold batch should simulate everything"
        # The warm rerun is all cache lookups (~ms), so unlike the cold
        # pass it can and must repeat: best-of-N sheds the FS noise.
        warm_s, warm = _best_seconds(
            lambda: run_batch(specs, jobs=2, cache=cache), 3 if quick else 5
        )
    return {
        "farm_runs_per_s": Metric(n_specs / cold_s, "runs/s"),
        "warm_cache_hit_rate": Metric(warm.hits / n_specs, "fraction"),
        "warm_batch_ms": Metric(warm_s * 1000.0, "ms", higher_is_better=False),
    }


def bench_pdes(quick: bool = False) -> dict[str, Metric]:
    """One large machine, serial vs 4-shard conservative-parallel (events/s).

    Both sides run the same scenario, and the sharded result is
    asserted bit-equal on its most fragile witness before timing counts
    for anything — a bench that measured a wrong simulation fast would
    be worse than no bench.
    """
    from repro.pdes import run_sharded
    from repro.scenario import Scenario

    # Same spec in quick and full mode: the per-window barrier cost is a
    # fixed tax, so a smaller quick workload would report a throughput
    # incomparable with the committed full-mode point and flake the
    # trajectory gate.  Quick mode only drops the repeat.
    spec = "fib:16@grid:32x32/cwn?seed=1"
    shards = 4
    scenario = Scenario.from_spec(spec)
    repeats = 1 if quick else 2
    serial_s, serial = _best_seconds(scenario.run, repeats)
    sharded_s, sharded = _best_seconds(lambda: run_sharded(scenario, shards), repeats)
    assert serial.events_executed == sharded.events_executed, (
        "sharded run diverged from serial"
    )
    assert serial.completion_time == sharded.completion_time, (
        "sharded run diverged from serial"
    )
    return {
        "pdes_events_per_s": Metric(sharded.events_executed / sharded_s, "events/s"),
        "pdes_serial_events_per_s": Metric(serial.events_executed / serial_s, "events/s"),
        "pdes_speedup_4_shards": Metric(serial_s / sharded_s, "x"),
    }


def bench_serve(quick: bool = False) -> dict[str, Metric]:
    """The scenario service end to end (requests/s and replay latency).

    One persistent 2-worker fleet serves two passes of the same distinct
    specs: the cold pass measures batched dispatch through the fleet,
    the warm pass must answer every request from the shared cache
    (asserted — a warm pass that simulates is a dedup regression, not a
    slow bench).  The replay metrics run the fixed mixed stream through
    the ``central`` policy and report wall-clock p50/p99, gating the
    per-request overhead (parse, hash, batch window, queue hops).
    """
    import asyncio

    from repro.parallel import ResultCache
    from repro.serve import ReplayRequest, ScenarioService, WorkerFleet, make_policy
    from repro.serve.replay import run_replay

    n_specs = 8 if quick else 16
    specs = [f"fib:9 @ grid:2x2 / cwn?seed={seed}" for seed in range(1, n_specs + 1)]

    async def drive(cache: ResultCache) -> tuple[float, float]:
        fleet = WorkerFleet(workers=2)
        service = ScenarioService(
            fleet, make_policy("central", 2), cache=cache, window=0.005, max_batch=8
        )
        await service.start()
        start = time.perf_counter()
        await asyncio.gather(*(service.submit(s) for s in specs))
        cold_s = time.perf_counter() - start
        assert service.stats.computed == n_specs, "cold pass should compute everything"
        start = time.perf_counter()
        await asyncio.gather(*(service.submit(s) for s in specs))
        warm_s = time.perf_counter() - start
        assert service.stats.cache_hits == n_specs, (
            "warm pass should be all cache hits"
        )
        await service.stop()
        return cold_s, warm_s

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        cold_s, warm_s = asyncio.run(drive(ResultCache(root)))

    # Same stream in quick and full mode (like bench_pdes): percentile
    # metrics on different streams would not be comparable across the
    # committed trajectory points.
    stream = [
        ReplayRequest(f"fib:9 @ grid:2x2 / cwn?seed={seed}")
        for seed in (1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4)
    ]
    replay = run_replay(stream, policies=("central",), workers=2, window=0.005)[0]
    return {
        "serve_cold_requests_per_s": Metric(n_specs / cold_s, "requests/s"),
        "serve_warm_dedup_requests_per_s": Metric(n_specs / warm_s, "requests/s"),
        "serve_replay_p50_ms": Metric(replay.p50_ms, "ms", higher_is_better=False),
        "serve_replay_p99_ms": Metric(replay.p99_ms, "ms", higher_is_better=False),
    }


def bench_lint(quick: bool = False) -> dict[str, Metric]:
    """Full-package ``repro lint`` wall time (ms, lower is better).

    The linter runs in CI on every push and locally via ``check.sh``;
    with the flow engine (call-graph construction, effect fixpoint,
    strategy instantiation, taint pass) it is the heaviest rule set.
    The budget is a full-repo pass well under 10 s — this metric is the
    trajectory gate that keeps it there.
    """
    from repro.lint import run_lint

    def lint_once():
        # A fresh pass each repeat: the flow project caches on the
        # ProjectIndex, which run_lint rebuilds, so this times the real
        # cold-start cost CI pays.
        result = run_lint()
        assert not result.errors, result.errors
        return result

    repeats = 1 if quick else 2
    seconds, _ = _best_seconds(lint_once, repeats)
    return {
        "lint_ms": Metric(seconds * 1000.0, "ms", higher_is_better=False),
    }


def run_benches(quick: bool = False) -> dict[str, Metric]:
    """All canonical benches, emitting one telemetry event per metric."""
    metrics: dict[str, Metric] = {}
    tele = _telemetry.sink()
    for group in (
        bench_kernel,
        bench_construction,
        bench_farm,
        bench_serve,
        bench_pdes,
        bench_lint,
    ):
        for name, metric in group(quick).items():
            metrics[name] = metric
            if tele is not None:
                tele.emit(
                    "bench.metric", name=name, value=metric.value, unit=metric.unit
                )
    return metrics


# -- the BENCH_<n>.json artifact -------------------------------------------------

def default_bench_path(root: str | Path = ".") -> Path:
    """Where this PR's trajectory point lives: ``<root>/BENCH_<n>.json``."""
    return Path(root) / f"BENCH_{BENCH_NUMBER}.json"


def write_bench(
    metrics: dict[str, Metric],
    path: str | Path,
    quick: bool = False,
) -> Path:
    """Write a schema-versioned trajectory point."""
    path = Path(path)
    payload = {
        "schema": BENCH_SCHEMA,
        "bench": BENCH_NUMBER,
        "quick": quick,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "metrics": {name: metric.to_dict() for name, metric in metrics.items()},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict[str, Metric]:
    """Read a trajectory point's metrics back (schema checked)."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: bench schema {schema!r} != supported {BENCH_SCHEMA}"
        )
    return {
        name: Metric.from_dict(data) for name, data in payload["metrics"].items()
    }


def compare_metrics(
    current: dict[str, Metric],
    baseline: dict[str, Metric],
    tolerance: float = 2.0,
) -> list[str]:
    """Regressions of ``current`` against ``baseline``, as report lines.

    ``tolerance`` is the allowed worsening *factor*: with the default
    2.0 a throughput metric fails below half the baseline and a latency
    metric fails above twice it.  CI compares across unlike machines, so
    it passes a larger factor (the repo convention is a 10x margin).
    Metrics present on only one side are ignored — the trajectory may
    gain benches over time.
    """
    if tolerance < 1.0:
        raise ValueError(f"tolerance is a worsening factor >= 1.0 (got {tolerance})")
    regressions: list[str] = []
    for name, metric in sorted(current.items()):
        base = baseline.get(name)
        if base is None or base.value == 0:
            continue
        if metric.higher_is_better:
            worse_by = base.value / metric.value if metric.value > 0 else float("inf")
        else:
            worse_by = metric.value / base.value
        if worse_by > tolerance:
            direction = "below" if metric.higher_is_better else "above"
            regressions.append(
                f"{name}: {metric.value:.4g} {metric.unit} is {worse_by:.2f}x "
                f"{direction} baseline {base.value:.4g} "
                f"(tolerance {tolerance:.2f}x)"
            )
    return regressions


def render_metrics(metrics: dict[str, Metric]) -> str:
    """Human-readable metric table (the command's stdout)."""
    width = max(len(name) for name in metrics) if metrics else 0
    lines = []
    for name, metric in sorted(metrics.items()):
        arrow = "^" if metric.higher_is_better else "v"
        lines.append(f"  {name:<{width}}  {metric.value:>14,.2f} {metric.unit} ({arrow})")
    return "\n".join(lines)


def main(
    quick: bool = False,
    out: str | Path | None = None,
    compare: str | Path | None = None,
    tolerance: float = 2.0,
    as_json: bool = False,
) -> int:
    """The ``repro bench`` command body; returns the process exit code.

    Runs the benches, loads the baseline (if any) *before* writing —
    so ``--out X --compare X`` refreshes the artifact and still gates
    against the committed point — then reports regressions.
    """
    metrics = run_benches(quick=quick)
    baseline = None
    if compare is not None:
        baseline = load_bench(compare)
    path = write_bench(metrics, default_bench_path() if out is None else out, quick=quick)
    if as_json:
        print(json.dumps({n: m.to_dict() for n, m in sorted(metrics.items())}, indent=2))
    else:
        print(f"bench ({'quick' if quick else 'full'}) -> {path}")
        print(render_metrics(metrics))
    if baseline is None:
        return 0
    regressions = compare_metrics(metrics, baseline, tolerance=tolerance)
    if regressions:
        print(f"\nPERF REGRESSION vs {compare}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nno regressions vs {compare} (tolerance {tolerance:.2f}x)")
    return 0
