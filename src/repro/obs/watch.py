"""``repro watch``: a live dashboard over a telemetry stream.

The spiritual successor of ORACLE's graphics monitor, rebuilt over the
:mod:`repro.obs.telemetry` JSONL stream instead of a dedicated output
format: point it at the file a running farm/sweep is appending to
(``REPRO_TELEMETRY=/tmp/run.jsonl repro table2 --jobs 4`` in one
terminal, ``repro watch --file /tmp/run.jsonl`` in another) and it
renders

* a farm panel — runs done/total, cache hits/misses, failures;
* an aggregate throughput panel — events/s summed over finished runs;
* the latest per-PE utilization sample as a red/blue heat frame,
  reusing :func:`repro.oracle.monitor.render_frame`'s character ramp
  (frames require a run sampled with ``SimConfig(sample_interval=...,
  sample_per_pe=True)``).

Rendering degrades gracefully: a real TTY gets a full-screen ANSI
dashboard refreshed in place (keys: ``q`` quits); a pipe gets one
status line per refresh; ``--once`` renders a single snapshot and
exits (the testable path, and handy for CI artifacts).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Iterator, TextIO

from ..oracle.monitor import _grid_shape, render_frame
from . import telemetry as _telemetry

__all__ = ["WatchState", "follow_lines", "watch_live", "watch_once"]


class WatchState:
    """Aggregated view of a telemetry stream, fed one event at a time."""

    def __init__(self) -> None:
        self.runs_total = 0
        self.runs_done = 0
        self.simulated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.failures = 0
        self.finished_runs = 0
        self.sim_events = 0
        self.sim_wall = 0.0
        self.last_run: dict[str, Any] | None = None
        self.last_finish: dict[str, Any] | None = None
        self.last_sample: dict[str, Any] | None = None
        self.last_plan: dict[str, Any] | None = None
        #: conservative-parallel progress (repro run --shards N)
        self.shard_run: dict[str, Any] | None = None
        self.shard_window: dict[str, Any] | None = None
        self.shard_events = 0
        self.shard_sync_ms = 0.0
        self.shard_windows = 0
        self.shard_finish: dict[str, Any] | None = None
        #: scenario-service progress (repro serve)
        self.serve_info: dict[str, Any] | None = None
        self.serve_requests = 0
        self.serve_cache_hits = 0
        self.serve_coalesced = 0
        self.serve_misses = 0
        self.serve_batches = 0
        self.serve_largest_batch = 0
        self.serve_dispatched = 0
        self.serve_completed = 0
        self.serve_errors = 0
        self.serve_busy = 0
        self.serve_wall_ms = 0.0
        self.serve_outstanding: list[int] | None = None
        self.serve_stop: dict[str, Any] | None = None
        self.events_seen = 0

    # -- ingestion ---------------------------------------------------------------

    def feed(self, event: dict[str, Any]) -> None:
        """Fold one telemetry record into the dashboard state."""
        self.events_seen += 1
        kind = event.get("ev")
        if kind == "batch.start":
            self.runs_total += int(event.get("total", 0))
        elif kind == "batch.progress":
            self.runs_done += 1
            if event.get("source") == "sim":
                self.simulated += 1
        elif kind == "batch.finish":
            self.failures += int(event.get("failures", 0))
        elif kind == "cache.hit":
            self.cache_hits += 1
        elif kind == "cache.miss":
            self.cache_misses += 1
        elif kind == "run.start":
            self.last_run = event
        elif kind == "run.finish":
            self.last_finish = event
            self.finished_runs += 1
            self.sim_events += int(event.get("events", 0))
            self.sim_wall += float(event.get("wall_s", 0.0))
        elif kind == "sample":
            self.last_sample = event
        elif kind == "plan.report":
            self.last_plan = event
        elif kind == "shard.start":
            self.shard_run = event
            self.shard_window = None
            self.shard_events = 0
            self.shard_sync_ms = 0.0
            self.shard_windows = 0
            self.shard_finish = None
        elif kind == "shard.window":
            self.shard_window = event
            self.shard_windows = int(event.get("window", self.shard_windows + 1))
            self.shard_events += int(event.get("events", 0))
        elif kind == "shard.sync":
            self.shard_sync_ms += float(event.get("wall_ms", 0.0))
        elif kind == "shard.finish":
            self.shard_finish = event
        elif kind == "serve.start":
            self.serve_info = event
            self.serve_stop = None
        elif kind == "serve.request":
            self.serve_requests += 1
            if event.get("source") == "cache":
                self.serve_cache_hits += 1
            else:
                self.serve_misses += 1
        elif kind == "serve.coalesce":
            self.serve_requests += 1
            self.serve_coalesced += 1
        elif kind == "serve.batch":
            self.serve_batches += 1
            self.serve_largest_batch = max(
                self.serve_largest_batch, int(event.get("size", 0))
            )
        elif kind == "serve.dispatch":
            self.serve_dispatched += 1
            outstanding = event.get("outstanding")
            if isinstance(outstanding, list):
                self.serve_outstanding = [int(v) for v in outstanding]
        elif kind == "serve.complete":
            self.serve_completed += 1
            self.serve_wall_ms += float(event.get("wall_ms", 0.0))
            if not event.get("ok", True):
                self.serve_errors += 1
        elif kind == "serve.busy":
            self.serve_busy += 1
        elif kind == "serve.stop":
            self.serve_stop = event

    def feed_line(self, line: str) -> None:
        for event in _telemetry.read_events(_StringSource(line)):
            self.feed(event)

    # -- derived -----------------------------------------------------------------

    @property
    def events_per_s(self) -> float:
        """Aggregate simulated events/s over all finished runs."""
        return self.sim_events / self.sim_wall if self.sim_wall > 0 else 0.0

    # -- rendering ---------------------------------------------------------------

    def status_line(self) -> str:
        """One compact line (the non-TTY live mode)."""
        line = (
            f"runs {self.runs_done}/{self.runs_total}"
            f" · cache {self.cache_hits}h/{self.cache_misses}m"
            f" · {self.events_per_s / 1000:.0f}k evt/s"
            f" · failures {self.failures}"
        )
        if self.serve_requests:
            line += (
                f" · serve {self.serve_requests} req "
                f"({self.serve_cache_hits + self.serve_coalesced} dedup)"
            )
        return line

    def render(self, color: bool = False, cols: int | None = None) -> str:
        """The full dashboard as text (one frame of the live view)."""
        lines = [
            f"runs       : {self.runs_done} done / {self.runs_total} planned "
            f"({self.simulated} simulated, {self.failures} failed)",
            f"cache      : {self.cache_hits} hits / {self.cache_misses} misses",
        ]
        if self.finished_runs:
            lines.append(
                f"throughput : {self.events_per_s:,.0f} events/s "
                f"over {self.finished_runs} finished run(s)"
            )
        current = self.last_run
        if current is not None:
            lines.append(
                "last run   : "
                f"{current.get('workload')} @ {current.get('topology')} "
                f"/ {current.get('strategy')} ({current.get('n_pes')} PEs)"
            )
        if self.last_plan is not None:
            plan = self.last_plan
            lines.append(
                f"last plan  : {plan.get('plan')} — {plan.get('runs')} runs, "
                f"{plan.get('hits')} hits, {plan.get('simulated')} simulated"
            )
        if self.shard_run is not None:
            run = self.shard_run
            head = (
                f"shards     : {run.get('shards')} x "
                f"{run.get('workload')} @ {run.get('topology')} "
                f"/ {run.get('strategy')} "
                f"(lookahead {run.get('lookahead')}, "
                f"{run.get('boundary_channels')} boundary channels)"
            )
            lines.append(head)
            if self.shard_finish is not None:
                fin = self.shard_finish
                lines.append(
                    f"  done     : {fin.get('windows')} windows, "
                    f"{fin.get('events'):,} events, "
                    f"{float(fin.get('events_per_s', 0.0)):,.0f} events/s"
                )
            elif self.shard_window is not None:
                win = self.shard_window
                lines.append(
                    f"  window {self.shard_windows}: "
                    f"horizon {float(win.get('horizon', 0.0)):.1f}, "
                    f"{win.get('shards_active')} shard(s) active, "
                    f"{self.shard_events:,} events, "
                    f"sync {self.shard_sync_ms:.0f} ms"
                )
        if self.serve_info is not None or self.serve_requests:
            info = self.serve_info or {}
            where = (
                f"http://{info.get('host')}:{info.get('port')} · "
                if info.get("host") is not None
                else ""
            )
            lines.append(
                f"serve      : {where}{info.get('workers', '?')} worker(s) · "
                f"policy {info.get('policy', '?')}"
                + (" · stopped" if self.serve_stop is not None else "")
            )
            dedup = self.serve_cache_hits + self.serve_coalesced
            lines.append(
                f"  requests : {self.serve_requests} "
                f"({self.serve_cache_hits} cache, {self.serve_coalesced} "
                f"coalesced, {self.serve_misses} computed) · "
                f"{self.serve_busy} busy · {self.serve_errors} errors"
                + (
                    f" · dedup {100 * dedup / self.serve_requests:.0f}%"
                    if self.serve_requests
                    else ""
                )
            )
            if self.serve_dispatched:
                mean_ms = (
                    self.serve_wall_ms / self.serve_completed
                    if self.serve_completed
                    else 0.0
                )
                outstanding = (
                    " ".join(str(v) for v in self.serve_outstanding)
                    if self.serve_outstanding is not None
                    else "?"
                )
                lines.append(
                    f"  fleet    : {self.serve_dispatched} dispatched in "
                    f"{self.serve_batches} batch(es) "
                    f"(largest {self.serve_largest_batch}) · "
                    f"{self.serve_completed} done · "
                    f"mean {mean_ms:.0f} ms · outstanding [{outstanding}]"
                )
        sample = self.last_sample
        if sample is not None:
            per_pe = sample.get("per_pe")
            head = (
                f"sample     : t={sample.get('sim_time', 0.0):.1f} "
                f"util={100 * float(sample.get('utilization', 0.0)):.1f}% "
                f"queue={sample.get('queue_depth', '?')}"
            )
            lines.append(head)
            if per_pe:
                frame_cols = cols if cols is not None else sample.get("cols")
                rows, ncols = _grid_shape(len(per_pe), frame_cols)
                lines.append(f"PE heat ({rows}x{ncols}, {len(per_pe)} PEs):")
                lines.append(render_frame(per_pe, frame_cols, color))
        if self.events_seen == 0:
            lines.append("(no telemetry events yet)")
        return "\n".join(lines)


class _StringSource:
    """Minimal read()-able wrapper so feed_line reuses read_events."""

    __slots__ = ("_text",)

    def __init__(self, text: str) -> None:
        self._text = text

    def read(self) -> str:
        return self._text


# -- stream plumbing -------------------------------------------------------------

def _resolve_stream(path: str | Path | None) -> Path:
    """The stream to watch: ``--file``, else ``$REPRO_TELEMETRY``."""
    import os

    if path is None:
        path = os.environ.get(_telemetry.ENV_VAR)
    if not path or path == "-":
        raise ValueError(
            "no telemetry stream: pass --file or set REPRO_TELEMETRY to a path"
        )
    return Path(path)


def follow_lines(
    path: Path,
    interval: float = 0.5,
    stop: Any = None,
) -> Iterator[list[str]]:
    """``tail -f`` as a generator: yields each poll's batch of new lines.

    Yields an empty list on quiet polls so the caller can refresh clocks
    or poll the keyboard; ``stop`` (a callable) ends the follow when it
    returns True.  A not-yet-created file is awaited, not an error.
    """
    offset = 0
    while True:
        if stop is not None and stop():
            return
        batch: list[str] = []
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(offset)
                text = fh.read()
                # Hold back a trailing partial line until its newline lands.
                complete = text.rfind("\n") + 1
                offset += len(text[:complete].encode("utf-8"))
                batch = text[:complete].splitlines()
        yield batch
        time.sleep(interval)


# -- entry points ----------------------------------------------------------------

def watch_once(
    path: str | Path | None,
    color: bool = False,
    cols: int | None = None,
) -> str:
    """Snapshot the whole stream and render one dashboard frame."""
    stream = _resolve_stream(path)
    state = WatchState()
    if stream.exists():
        for event in _telemetry.read_events(stream):
            state.feed(event)
    return f"repro watch · {stream}\n" + state.render(color=color, cols=cols)


def _watch_tty(
    stream: Path,
    interval: float,
    color: bool,
    cols: int | None,
    out: TextIO,
) -> None:
    """Full-screen ANSI refresh loop; ``q`` (or Ctrl-C) quits."""
    import select
    import termios
    import tty

    fd = sys.stdin.fileno()
    saved = termios.tcgetattr(fd)
    quit_requested = [False]

    def poll_quit() -> bool:
        while select.select([sys.stdin], [], [], 0)[0]:
            if sys.stdin.read(1).lower() == "q":
                quit_requested[0] = True
        return quit_requested[0]

    state = WatchState()
    try:
        tty.setcbreak(fd)
        for batch in follow_lines(stream, interval, stop=poll_quit):
            for line in batch:
                state.feed_line(line)
            frame = state.render(color=color, cols=cols)
            out.write(
                "\x1b[H\x1b[2J"  # home + clear
                f"repro watch · {stream} · q quits\n{frame}\n"
            )
            out.flush()
    finally:
        termios.tcsetattr(fd, termios.TCSADRAIN, saved)


def _watch_lines(
    stream: Path,
    interval: float,
    out: TextIO,
) -> None:
    """Plain line mode for pipes/redirects: one status line per change."""
    state = WatchState()
    last = ""
    for batch in follow_lines(stream, interval):
        for line in batch:
            state.feed_line(line)
        status = state.status_line()
        if batch and status != last:
            out.write(status + "\n")
            out.flush()
            last = status


def watch_live(
    path: str | Path | None,
    interval: float = 0.5,
    color: bool = False,
    cols: int | None = None,
    out: TextIO | None = None,
) -> None:
    """Follow the stream until interrupted (TTY dashboard or line mode)."""
    stream = _resolve_stream(path)
    out = sys.stdout if out is None else out
    is_tty = getattr(out, "isatty", lambda: False)() and sys.stdin.isatty()
    try:
        if is_tty:
            _watch_tty(stream, interval, color, cols, out)
        else:
            _watch_lines(stream, interval, out)
    except KeyboardInterrupt:
        pass
