"""Opt-in JSONL telemetry: counters, gauges, timers, structured events.

The simulator's instrumented layers (the machine's tick sampler, the
farm orchestrator, the result cache, the plan engine) all publish into
one module-level sink.  The design constraint is the Engine/PE hot path:
telemetry must cost *nothing* when nobody asked for it, so

* the sink is a single module global, ``None`` when disabled;
* every publishing site guards with ``if _sink is not None`` (or calls
  the module-level :func:`emit`, which does the same one comparison);
* :func:`counter` hands out the shared :data:`NULL_COUNTER` no-op
  singleton when disabled, so a hot loop can hold a counter reference
  unconditionally and still pay only a no-op method call.

Enabled, the sink appends one JSON object per line (JSONL) to a file —
append-only so concurrent farm workers (which inherit the destination
via fork, or re-open it via ``REPRO_TELEMETRY`` under spawn) interleave
whole lines rather than corrupt each other.  Every record carries the
schema version and a wall-clock timestamp::

    {"v": 1, "ev": "run.finish", "wall": 1754550000.1, "events": 7613, ...}

Enable with ``REPRO_TELEMETRY=/path/to/stream.jsonl`` (the CLI and farm
workers pick it up automatically) or programmatically via
:func:`configure` / the :func:`capture` context manager.
"""

from __future__ import annotations

import io
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

__all__ = [
    "NULL_COUNTER",
    "TELEMETRY_SCHEMA",
    "Counter",
    "NullCounter",
    "Telemetry",
    "capture",
    "configure",
    "counter",
    "emit",
    "enabled",
    "init_from_env",
    "read_events",
    "sink",
]

#: Version stamped into every record ("v"); bump when field meanings
#: change so ``repro watch`` and downstream consumers can discriminate.
TELEMETRY_SCHEMA = 1

#: Environment variable naming the JSONL destination ("-" = stderr).
ENV_VAR = "REPRO_TELEMETRY"


class NullCounter:
    """The disabled counter: every operation is a no-op.

    There is exactly one instance (:data:`NULL_COUNTER`); hot paths that
    fetch a counter while telemetry is off all share it, so "telemetry
    disabled" costs one identity-returning call at setup and a no-op
    method per increment — nothing allocates, nothing branches on state.
    """

    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass

    @property
    def value(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullCounter()"


#: the shared disabled counter (see :class:`NullCounter`)
NULL_COUNTER = NullCounter()


class Counter:
    """A named monotone counter owned by a live :class:`Telemetry` sink.

    Counters accumulate in memory and are flushed as one ``counters``
    event when the sink closes (or on :meth:`Telemetry.flush_counters`),
    so incrementing is a pure in-process add — no I/O per increment.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Telemetry:
    """One JSONL event sink.

    ``destination`` is a path (opened append, line-buffered) or any
    object with a ``write`` method (a ``StringIO`` in tests, ``stderr``
    for quick looks).  A write error permanently disables the sink
    rather than crashing a long sweep half-way through.
    """

    def __init__(
        self,
        destination: str | Path | TextIO,
        *,
        clock: Any = time.time,
    ) -> None:
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._broken = False
        if hasattr(destination, "write"):
            self._fh: TextIO = destination  # type: ignore[assignment]
            self._owns_fh = False
            self.path: Path | None = None
        else:
            self.path = Path(destination)
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", buffering=1, encoding="utf-8")
            self._owns_fh = True

    # -- events ------------------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event record (whole line, schema + wall stamped)."""
        if self._broken:
            return
        record: dict[str, Any] = {"v": TELEMETRY_SCHEMA, "ev": event, "wall": self._clock()}
        record.update(fields)
        try:
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        except (OSError, ValueError):
            # A full disk or closed pipe must not take the simulation
            # down with it; telemetry degrades to silence.
            self._broken = True

    def gauge(self, name: str, value: float, **fields: Any) -> None:
        """Emit one instantaneous measurement."""
        self.emit("gauge", name=name, value=value, **fields)

    @contextmanager
    def timer(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a with-block and emit a ``timer`` event on exit."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                "timer", name=name, seconds=time.perf_counter() - start, **fields
            )

    # -- counters ----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter (created on first use, one per name)."""
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def flush_counters(self) -> None:
        """Emit accumulated counters as one ``counters`` event (if any)."""
        if self._counters:
            self.emit(
                "counters", values={c.name: c.value for c in self._counters.values()}
            )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Flush counters and release the file handle (if owned)."""
        self.flush_counters()
        if self._owns_fh:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._broken = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.path if self.path is not None else self._fh
        return f"Telemetry({where})"


# ---------------------------------------------------------------------------
# The module-level sink: the one switch every instrumented layer checks.
# ---------------------------------------------------------------------------

_sink: Telemetry | None = None


def sink() -> Telemetry | None:
    """The active sink, or ``None`` while telemetry is disabled.

    Instrumented code holds this in a local and guards emissions with
    ``if t is not None`` — the entire disabled-mode cost.
    """
    return _sink


def enabled() -> bool:
    """True when a sink is configured."""
    return _sink is not None


def emit(event: str, **fields: Any) -> None:
    """Emit through the module sink; a no-op while disabled."""
    t = _sink
    if t is not None:
        t.emit(event, **fields)


def counter(name: str) -> Counter | NullCounter:
    """The module sink's named counter, or :data:`NULL_COUNTER` when off."""
    t = _sink
    if t is None:
        return NULL_COUNTER
    return t.counter(name)


def configure(destination: str | Path | TextIO | None) -> Telemetry | None:
    """Install (or with ``None`` remove) the module-level sink.

    Returns the new sink.  The previous sink, if any, is closed when the
    module owned its file handle.
    """
    global _sink
    if _sink is not None:
        _sink.close()
    _sink = None if destination is None else Telemetry(destination)
    return _sink


def init_from_env() -> Telemetry | None:
    """Configure from ``$REPRO_TELEMETRY`` (idempotent; "-" = stderr).

    Called by the CLI on startup and by farm workers at birth, so a
    single environment variable lights up the whole process tree.  An
    already-configured sink is left alone (re-entrant mains, forked
    workers inheriting the parent's sink).
    """
    if _sink is not None:
        return _sink
    destination = os.environ.get(ENV_VAR)
    if not destination:
        return None
    if destination == "-":
        return configure(sys.stderr)
    return configure(destination)


@contextmanager
def capture(
    destination: str | Path | TextIO | None = None,
) -> Iterator[Telemetry]:
    """Enable telemetry for a with-block (tests, ad-hoc scripts).

    With no destination an in-memory buffer is used; the yielded sink's
    events are then retrievable via :func:`read_events` on the buffer.
    """
    global _sink
    previous = _sink
    target = io.StringIO() if destination is None else destination
    _sink = Telemetry(target)
    try:
        yield _sink
    finally:
        # close() flushes counters; an unowned destination (the default
        # in-memory buffer) stays open and readable afterwards.
        _sink.close()
        _sink = previous


# ---------------------------------------------------------------------------
# Reading streams back (watch, tests, ad-hoc analysis).
# ---------------------------------------------------------------------------

def read_events(source: str | Path | TextIO | io.StringIO) -> list[dict[str, Any]]:
    """Parse a JSONL telemetry stream into event dicts.

    Tolerates a trailing partial line (a writer mid-record) and skips
    malformed lines rather than failing the whole read — a live tail
    must survive whatever a crashed worker left behind.
    """
    if hasattr(source, "getvalue"):
        text = source.getvalue()  # type: ignore[union-attr]
    elif hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        text = Path(source).read_text(encoding="utf-8")
    events: list[dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            events.append(record)
    return events
