"""Observability: telemetry events, the perf-trajectory bench, ``watch``.

ORACLE shipped a graphics monitor alongside the simulator ("utilization
of each PE is output at every sampling interval ... particularly useful
for debugging the load balancing strategies").  This package is our
production-shaped descendant of that facility, in three faces:

* :mod:`repro.obs.telemetry` — an opt-in, near-zero-overhead sink the
  engine sampler, the farm, and the result cache publish JSONL events
  into (``REPRO_TELEMETRY=/path/to/stream.jsonl``);
* :mod:`repro.obs.bench` — the ``repro bench`` perf-trajectory harness:
  canonical kernel/construction/farm benches written to a
  schema-versioned ``BENCH_<n>.json`` per PR, with ``--compare``
  regression gating for CI;
* :mod:`repro.obs.watch` — the ``repro watch`` live dashboard: tails a
  telemetry stream and renders per-PE heat frames plus farm panels.
"""

from .telemetry import (
    NULL_COUNTER,
    TELEMETRY_SCHEMA,
    Telemetry,
    capture,
    configure,
    counter,
    emit,
    enabled,
    init_from_env,
    read_events,
    sink,
)

__all__ = [
    "NULL_COUNTER",
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "capture",
    "configure",
    "counter",
    "emit",
    "enabled",
    "init_from_env",
    "read_events",
    "sink",
]
