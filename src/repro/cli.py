"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands map one-to-one onto the experiment modules:

* ``repro run "fib:15 @ grid:10x10 / cwn?seed=3"`` — one simulation,
  summary line (the legacy ``repro run fib:15 grid:10x10 cwn`` three-part
  form still works);
* ``repro list [strategies|topologies|workloads]`` — the registered
  vocabularies the scenario spec grammar draws from;
* ``repro table1`` — the parameter-optimization sweep (Table 1);
* ``repro table2`` — the CWN/GM speedup grid (Table 2);
* ``repro table3`` — the hop-distance histogram (Table 3);
* ``repro plots [--kind dc|fib]`` — utilization-vs-goals curves (Plots 1-10);
* ``repro timeseries`` — utilization-vs-time traces (Plots 11-16);
* ``repro hypercube`` — the Appendix I experiments;
* ``repro scaling`` — CWN's edge vs machine size (the diameter conjecture);
* ``repro large`` — the same conjecture on 1024-4096-PE machines;
* ``repro grainsize`` — the medium-grain argument, measured;
* ``repro stream`` — the open-system query-stream study;
* ``repro zoo`` — every implemented strategy on one scenario;
* ``repro bounds fib:15 grid:10x10`` — analytic completion-time bounds;
* ``repro monitor fib:13 grid:8x8 cwn`` — the red/blue load film;
* ``repro cache stats|clear`` — the on-disk simulation result cache
  (``stats --json`` for machine consumption);
* ``repro bench`` — the perf-trajectory harness: canonical benches into
  a schema-versioned ``BENCH_<n>.json``, ``--compare`` as a CI gate;
* ``repro watch`` — live dashboard over a ``REPRO_TELEMETRY`` stream;
* ``repro serve`` — long-lived scenario service: HTTP/stdin fronts,
  batching + three-way dedup, a warm worker fleet scheduled by the
  paper's own dispatch policies (``--replay FILE`` races the policies
  on a recorded stream instead of serving);
* ``repro submit "fib:15 @ grid:8x8 / cwn"`` — client for a running
  ``repro serve`` (prints the same canonical JSON as ``run --json``);
* ``repro lint`` — the determinism & invariant linter
  (:mod:`repro.lint`): machine-checks the code shape the repo's
  guarantees rest on (exit 0 clean / 1 findings / 2 usage error).

All experiment commands accept ``--full`` to run at paper scale
(equivalently, set ``REPRO_FULL=1``), plus the global farm flags
``--jobs N`` (fan simulations out over N worker processes; 0 = all
cores; default serial, or ``REPRO_JOBS``) and ``--no-cache``.  Every
command routes its simulations through the declarative plan pipeline
(:mod:`repro.experiments.plan`), so the flags are honored uniformly:
results are cached by default (reruns and interrupted sweeps resume for
free) and each invocation prints one ``[farm]`` hit/miss line on
stderr, leaving stdout diff-identical to serial runs.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from contextlib import contextmanager

__all__ = ["main"]


def _jobs_count(raw: str) -> int:
    """argparse type for --jobs: a non-negative integer."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {raw!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = all cores)")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Kale (ICPP 1988): CWN vs the Gradient Model",
    )
    # Farm flags shared by every command (argparse "parents" idiom, so
    # they are accepted after the subcommand: `repro table2 --jobs 4`).
    farm = argparse.ArgumentParser(add_help=False)
    farm.add_argument(
        "--jobs",
        type=_jobs_count,
        default=None,
        metavar="N",
        help="fan simulations out over N worker processes "
        "(0 = all cores; default: serial, or REPRO_JOBS)",
    )
    farm.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (runs otherwise skip "
        "previously computed cells and persist fresh ones)",
    )
    farm.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the [farm] hit/miss summary line on stderr "
        "(the structured farm.summary telemetry event still fires)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run",
        help="run one simulation",
        parents=[farm],
        description="Run one simulation, described either as a single "
        "scenario spec ('fib:15 @ grid:10x10 / cwn?seed=3') or as the "
        "legacy three positionals (workload topology strategy).",
    )
    run.add_argument(
        "scenario",
        nargs="+",
        metavar="SPEC",
        help="one scenario spec '<workload> @ <topology> / <strategy>[?k=v&...]', "
        "or three parts: workload (fib:15, dc:1:987) topology (grid:10x10) "
        "strategy (cwn, gm, acwn, ...)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed override; when omitted, the spec's seed=/cfg.seed= "
        "override applies, else 1",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run the one machine across N worker processes with the "
        "conservative parallel engine (bit-identical result; the "
        "scenario must be shardable — see docs/pdes.md)",
    )
    run.add_argument("--verbose", action="store_true", help="print per-PE stats")
    run.add_argument(
        "--json",
        action="store_true",
        help="print the result as canonical JSON (sorted keys, compact "
        "separators) — byte-identical to the 'result' field a running "
        "`repro serve` returns for the same spec",
    )

    lst = sub.add_parser(
        "list",
        help="list the registered strategies/topologies/workloads",
        description="Print the registries the spec grammar draws from "
        "(plugins registered via @register or entry points included).",
    )
    lst.add_argument(
        "what",
        nargs="?",
        choices=("strategies", "topologies", "workloads", "all"),
        default="all",
    )

    for name, help_text in (
        ("table1", "parameter optimization sweep (Table 1)"),
        ("table2", "CWN/GM speedup comparison grid (Table 2)"),
        ("table3", "hop-distance histogram (Table 3)"),
        ("plots", "utilization vs problem size (Plots 1-10)"),
        ("timeseries", "utilization vs time (Plots 11-16)"),
        ("hypercube", "Appendix I hypercube experiments"),
        ("scaling", "CWN's edge vs machine size (diameter conjecture)"),
        ("large", "large-machine study: 1024-4096 PEs (grid/torus3d/hypercube)"),
        ("grainsize", "grain-size sweep (the medium-grain argument)"),
        ("stream", "open-system query-stream study"),
        ("zoo", "all strategies on one scenario"),
    ):
        p = sub.add_parser(name, help=help_text, parents=[farm])
        p.add_argument("--full", action="store_true", help="paper-scale grids")
        p.add_argument("--seed", type=int, default=1)
        if name == "plots":
            p.add_argument("--kind", choices=("dc", "fib"), default="dc")
        if name == "stream":
            p.add_argument("--queries", type=int, default=8)
            p.add_argument("--spacing", type=float, default=200.0)
        if name == "table2":
            p.add_argument("--kind", choices=("dc", "fib", "both"), default="both")
            p.add_argument(
                "--report",
                action="store_true",
                help="append a Markdown claims report (sign test, gmean CI)",
            )

    bounds = sub.add_parser("bounds", help="analytic completion-time bounds", parents=[farm])
    bounds.add_argument("workload", help="e.g. fib:15, dc:1:987")
    bounds.add_argument("topology", help="e.g. grid:10x10 (only n matters)")
    bounds.add_argument(
        "--strategy",
        default=None,
        help="also run this strategy and score it against the bounds",
    )
    bounds.add_argument("--seed", type=int, default=1)

    mon = sub.add_parser("monitor", help="replay a run as a PE-activity film", parents=[farm])
    mon.add_argument("workload")
    mon.add_argument("topology")
    mon.add_argument("strategy")
    mon.add_argument("--seed", type=int, default=1)
    mon.add_argument("--frames", type=int, default=12, help="number of frames")
    mon.add_argument("--color", action="store_true", help="ANSI 256-color output")

    cachep = sub.add_parser("cache", help="inspect or clear the result cache")
    cachep.add_argument("action", choices=("stats", "clear"))
    cachep.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or ~/.cache/repro-kale88)",
    )
    cachep.add_argument(
        "--json",
        action="store_true",
        help="machine-readable stats (entries, bytes, schema) on stdout",
    )

    bench = sub.add_parser(
        "bench",
        help="perf-trajectory harness: run the canonical benches, "
        "write BENCH_<n>.json, optionally gate against a baseline",
        description="Run the canonical kernel/construction/farm benches "
        "and write a schema-versioned BENCH_<n>.json trajectory point. "
        "With --compare, exit nonzero when any metric is worse than the "
        "baseline by more than the tolerance factor.",
    )
    bench.add_argument(
        "--quick", action="store_true", help="fewer repeats (the CI setting)"
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="where to write the trajectory point (default: ./BENCH_<n>.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="previous BENCH_*.json to gate against (loaded before --out "
        "is written, so both may name the same file)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="allowed worsening factor per metric (default 2.0; CI uses "
        "10.0 — the repo's cross-machine margin convention)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the metrics as JSON on stdout"
    )

    watch = sub.add_parser(
        "watch",
        help="live dashboard over a telemetry stream (ORACLE's monitor, "
        "rebuilt over REPRO_TELEMETRY)",
        description="Tail a telemetry JSONL stream from a running farm or "
        "sweep and render per-PE heat frames plus farm panels.  Keys in "
        "the live TTY view: q quits.  Without a TTY, prints one status "
        "line per refresh; --once renders a single snapshot and exits.",
    )
    watch.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="telemetry stream to follow (default: $REPRO_TELEMETRY)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot of the whole stream and exit",
    )
    watch.add_argument(
        "--interval", type=float, default=0.5, help="refresh period in seconds"
    )
    watch.add_argument(
        "--cols", type=int, default=None, help="heat-frame width override"
    )
    watch.add_argument("--color", action="store_true", help="ANSI 256-color frames")

    serve = sub.add_parser(
        "serve",
        help="long-lived scenario service (HTTP/stdin) over a warm "
        "worker fleet, dispatch scheduled by the paper's own policies",
        description="Serve scenario specs over HTTP (POST /run, GET "
        "/healthz, GET /stats) or stdin lines.  Identical concurrent "
        "requests coalesce onto one computation, warm results come from "
        "the shared on-disk cache, and genuine misses batch before "
        "dispatching to a persistent worker fleet.  SIGTERM drains "
        "gracefully.  --replay races a recorded request stream through "
        "several dispatch policies and reports latency percentiles and "
        "throughput per policy instead of serving.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8023, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--stdin",
        action="store_true",
        help="serve spec lines from stdin (JSONL responses on stdout) "
        "instead of HTTP",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N", help="fleet size"
    )
    serve.add_argument(
        "--policy",
        default="central",
        help="dispatch policy: central, random, roundrobin, cwn, gm "
        "(adapters of the paper's strategies; default central)",
    )
    serve.add_argument(
        "--window",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="batch admission window (default 0.01)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, metavar="N", help="batch size cap"
    )
    serve.add_argument(
        "--high-water",
        type=int,
        default=256,
        metavar="N",
        help="max admitted-but-unfinished computations before 429",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="per-worker bounded task-queue depth",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the shared on-disk result cache (coalescing still on)",
    )
    serve.add_argument("--seed", type=int, default=1, help="policy RNG seed")
    serve.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay this recorded request stream through each --policies "
        "entry and print a per-policy latency/throughput table",
    )
    serve.add_argument(
        "--policies",
        default="central,random,cwn,gm",
        metavar="NAMES",
        help="comma-separated policies for --replay "
        "(default central,random,cwn,gm)",
    )
    serve.add_argument(
        "--speed",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="replay pacing: honor recorded arrival offsets scaled by "
        "FACTOR (0 = as fast as admission allows)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit one scenario spec to a running `repro serve`",
        description="POST the spec to a running serve instance and print "
        "the result as canonical JSON — byte-identical to `repro run "
        "--json` for the same spec.",
    )
    submit.add_argument("spec", help="scenario spec, e.g. 'fib:15 @ grid:8x8 / cwn'")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8023)
    submit.add_argument(
        "--timeout", type=float, default=120.0, help="client socket timeout"
    )
    submit.add_argument(
        "--envelope",
        action="store_true",
        help="print the full response envelope (key, source, wall_ms) "
        "instead of just the result JSON",
    )

    lint = sub.add_parser(
        "lint",
        help="determinism & invariant linter over the repro package",
        description="Run the AST-based rule engine (repro.lint) over the "
        "given paths (default: the installed repro package).  Exit codes: "
        "0 = clean (every finding fixed, waived inline, or baselined), "
        "1 = findings remain, 2 = usage/environment error.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text; 'github' emits ::error "
        "workflow-command annotations for CI)",
    )
    lint.add_argument(
        "--explain",
        action="store_true",
        help="print each finding's propagation trace (source→sink chain "
        "or hook→effect call path) indented under its line",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: ./lint-baseline.json or the repo's copy, if present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover the current findings "
        "(reasons left as TODO placeholders to fill in) and exit 0",
    )
    lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries that matched no finding this pass "
        "(stale debt), rewrite the file, and exit 0",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated subset of rule ids to run",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules with their one-line summaries",
    )
    return parser


def _farm_args(args: argparse.Namespace) -> tuple["int | None", object]:
    """Resolve the shared ``--jobs`` / ``--no-cache`` flags.

    ``jobs`` comes from ``--jobs`` or the ``REPRO_JOBS`` environment
    variable (``None`` = serial in-process); the content-addressed
    result cache is on by default — ``--no-cache`` opts out.
    """
    from .experiments.scale import default_jobs

    try:
        jobs = default_jobs(getattr(args, "jobs", None))
    except ValueError as exc:
        # A malformed REPRO_JOBS gets the same one-line treatment as a
        # malformed --jobs (which argparse already validates).
        print(f"repro: error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    if getattr(args, "no_cache", False):
        return jobs, None
    from .parallel import ResultCache

    return jobs, ResultCache()


@contextmanager
def _farmed(args: argparse.Namespace):
    """Resolve the farm flags and print one ``[farm]`` summary line.

    Yields ``(jobs, cache)`` for the experiment call and, when the body
    completes, sums the telemetry of every plan executed inside it onto
    stderr (stdout stays diff-identical to a serial, uncached run).
    The same summary is emitted as a structured ``farm.summary``
    telemetry event; ``--quiet`` suppresses only the human line.
    """
    from .experiments.plan import collect_reports
    from .obs import telemetry

    jobs, cache = _farm_args(args)
    with collect_reports() as reports:
        yield jobs, cache
    hits = sum(r.hits for r in reports)
    simulated = sum(r.executed for r in reports)
    tele = telemetry.sink()
    if tele is not None:
        tele.emit(
            "farm.summary", hits=hits, simulated=simulated, plans=len(reports)
        )
    if not getattr(args, "quiet", False):
        print(f"[farm] {hits} cache hits, {simulated} simulated", file=sys.stderr)


def _plan_one(
    workload: str,
    topology: str,
    strategy: str,
    jobs: "int | None",
    cache: object,
    config: object = None,
    seed: "int | None" = None,
):
    """Run one CLI-described simulation through the plan engine."""
    from .experiments.plan import ExperimentPlan, execute, planned_run

    plan = ExperimentPlan(
        "run",
        (planned_run(workload, topology, strategy, config=config, seed=seed),),
        lambda results, _meta: results[0],
    )
    return execute(plan, jobs=jobs, cache=cache)


def _scenario_from_args(args: argparse.Namespace):
    """The ``run`` command's positionals as one Scenario.

    One positional is the scenario spec grammar; three are the legacy
    ``workload topology strategy`` form.  An explicit ``--seed`` wins;
    otherwise the spec's ``?seed=`` / ``?cfg.seed=`` override applies,
    and a run with no seed anywhere defaults to 1.
    """
    from dataclasses import replace

    from .scenario import Scenario

    parts = args.scenario
    if len(parts) == 1:
        scenario = Scenario.from_spec(parts[0])
    elif len(parts) == 3:
        scenario = Scenario.of(parts[0], parts[1], parts[2])
    else:
        print(
            "repro: error: run takes one scenario spec "
            "('fib:15 @ grid:10x10 / cwn') or three parts "
            "(workload topology strategy)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if args.seed is not None:
        return replace(scenario, seed=args.seed)
    return scenario.seeded()


def _plan_scenario(scenario, jobs: "int | None", cache: object):
    """Run one Scenario through the plan engine."""
    from .experiments.plan import ExperimentPlan, execute, planned_scenario

    plan = ExperimentPlan(
        "run", (planned_scenario(scenario),), lambda results, _meta: results[0]
    )
    return execute(plan, jobs=jobs, cache=cache)


def _cmd_run(args: argparse.Namespace) -> None:
    # A mistyped spec gets the registry's one-line diagnosis (names +
    # nearest match), not a traceback.  Canonicalizing eagerly resolves
    # every name through the registries, so all spec mistakes surface
    # here; errors raised later, mid-simulation, are genuine bugs and
    # propagate with their tracebacks.
    try:
        scenario = _scenario_from_args(args)
        scenario.canonical()
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    if args.shards != 1:
        # The conservative parallel engine is a runtime choice, not part
        # of the scenario's identity: it bypasses the plan/cache layer
        # (a cache hit would defeat the point of running sharded) and
        # returns the bit-identical SimResult directly.
        from .pdes import NotShardable, run_sharded

        try:
            res = run_sharded(scenario, args.shards)
        except (NotShardable, ValueError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            raise SystemExit(2) from None
    else:
        with _farmed(args) as (jobs, cache):
            res = _plan_scenario(scenario, jobs, cache)
    if getattr(args, "json", False):
        from .parallel import result_json

        # Canonical JSON — the exact bytes a running `repro serve`
        # returns in its "result" field, so the two can be diffed.
        print(result_json(res))
        return
    print(res.summary())
    if args.verbose:
        import numpy as np

        util = res.per_pe_utilization
        print(f"result value       : {res.result_value}")
        print(f"goals executed     : {res.total_goals}")
        print(f"goal messages      : {res.goal_messages_sent}")
        print(f"response messages  : {res.response_messages_sent}")
        print(f"control words      : {res.control_words_sent}")
        print(f"events executed    : {res.events_executed}")
        print(
            "per-PE util        : "
            f"min={util.min():.2f} median={np.median(util):.2f} max={util.max():.2f}"
        )
        print(f"load balance CV    : {res.load_balance_cv:.3f}")
        print(f"busiest channel    : {res.channel_utilization.max():.2f}")


def _cmd_table1(args: argparse.Namespace) -> None:
    from .experiments.optimization import render_table1, run_optimization

    with _farmed(args) as (jobs, cache):
        results = run_optimization(
            small=not args.full, seed=args.seed, jobs=jobs, cache=cache
        )
        print(render_table1(results))


def _cmd_table2(args: argparse.Namespace) -> None:
    from .experiments.comparison import render_table2, run_comparison, summarize_claims

    with _farmed(args) as (jobs, cache):
        cells = run_comparison(
            kind=args.kind, full=args.full or None, seed=args.seed, jobs=jobs, cache=cache
        )
        print(render_table2(cells))
        print()
        print(summarize_claims(cells))
        if getattr(args, "report", False):
            from .analysis import paired_summary, render_report

            summary = paired_summary([cell.ratio for cell in cells])
            print()
            print(
                render_report(
                    "Table 2 — speedup of CWN over GM",
                    summary,
                    paper_claims={"wins": "118/120", "wins by >10%": "110/120"},
                    notes=[
                        f"{len(cells)} cells at "
                        + ("paper scale" if args.full else "reduced scale"),
                    ],
                )
            )


def _cmd_table3(args: argparse.Namespace) -> None:
    from .experiments.hops import render_table3, run_hop_study

    with _farmed(args) as (jobs, cache):
        study = run_hop_study(
            fib_n=18 if args.full else 15, seed=args.seed, jobs=jobs, cache=cache
        )
        print(render_table3(study))
        print(
            f"\ncommunication ratio (CWN/GM mean distance): {study.communication_ratio:.2f}"
        )


def _cmd_plots(args: argparse.Namespace) -> None:
    from .experiments.utilization_curves import render_curve, run_all_curves

    with _farmed(args) as (jobs, cache):
        for plot_no, curve in run_all_curves(
            kind=args.kind, full=args.full or None, seed=args.seed, jobs=jobs, cache=cache
        ):
            print(render_curve(curve, plot_no))
            print()


def _cmd_timeseries(args: argparse.Namespace) -> None:
    from .experiments.timeseries import render_timeseries, run_paper_timeseries

    with _farmed(args) as (jobs, cache):
        for plot_no, study in run_paper_timeseries(
            full=args.full or None, seed=args.seed, jobs=jobs, cache=cache
        ):
            print(render_timeseries(study, plot_no))
            print()


def _cmd_hypercube(args: argparse.Namespace) -> None:
    from .experiments.hypercube_appendix import (
        run_hypercube_curves,
        run_hypercube_timeseries,
    )
    from .experiments.timeseries import render_timeseries
    from .experiments.utilization_curves import render_curve

    with _farmed(args) as (jobs, cache):
        for _dim, curve in run_hypercube_curves(
            full=args.full or None, seed=args.seed, jobs=jobs, cache=cache
        ):
            print(render_curve(curve))
            print()
        for _n, study in run_hypercube_timeseries(
            full=args.full or None, seed=args.seed, jobs=jobs, cache=cache
        ):
            print(render_timeseries(study))
            print()


def _cmd_scaling(args: argparse.Namespace) -> None:
    from .experiments.scaling import render_scaling, run_scaling

    with _farmed(args) as (jobs, cache):
        print(
            render_scaling(
                run_scaling(full=args.full or None, seed=args.seed, jobs=jobs, cache=cache)
            )
        )


def _cmd_large(args: argparse.Namespace) -> None:
    from .experiments.large_machines import render_large_machines, run_large_machines

    with _farmed(args) as (jobs, cache):
        print(
            render_large_machines(
                run_large_machines(
                    full=args.full or None, seed=args.seed, jobs=jobs, cache=cache
                )
            )
        )


def _cmd_grainsize(args: argparse.Namespace) -> None:
    from .experiments.grainsize import render_grainsize, run_grainsize

    with _farmed(args) as (jobs, cache):
        print(render_grainsize(run_grainsize(seed=args.seed, jobs=jobs, cache=cache)))


def _cmd_stream(args: argparse.Namespace) -> None:
    from .experiments.query_stream import render_stream, run_stream

    with _farmed(args) as (jobs, cache):
        results = run_stream(
            queries=args.queries,
            spacing=args.spacing,
            seed=args.seed,
            jobs=jobs,
            cache=cache,
        )
        print(render_stream(results))


def _cmd_zoo(args: argparse.Namespace) -> None:
    from .experiments.plan import ExperimentPlan, execute
    from .scenario import Scenario

    fib_n = 15 if args.full else 13
    strategy_specs = (
        "cwn", "gm", "acwn", "gm-event", "gm-batch", "threshold", "stealing",
        "symmetric", "bidding", "diffusion", "randomwalk", "central",
        "random", "roundrobin", "local",
    )
    plan = ExperimentPlan.from_scenarios(
        "zoo",
        tuple(
            Scenario.of(f"fib:{fib_n}", "grid:8x8", spec, seed=args.seed)
            for spec in strategy_specs
        ),
        lambda results, _meta: list(results),
        tuple(strategy_specs),
    )
    with _farmed(args) as (jobs, cache):
        for res in execute(plan, jobs=jobs, cache=cache):
            print(res.summary())


def _cmd_bounds(args: argparse.Namespace) -> None:
    from .experiments.runner import build_machine
    from .validation import completion_bounds

    machine = build_machine(args.workload, args.topology, args.strategy or "local")
    bounds = completion_bounds(machine.program, machine.config.costs, machine.topology.n)
    print(f"{args.workload} on {machine.topology.name}:")
    print(f"  total work T1                : {bounds.work:,.0f}")
    print(f"  critical path T_inf          : {bounds.span:,.0f}")
    print(f"  lower bound max(T1/P, T_inf) : {bounds.lower:,.0f}")
    print(f"  greedy envelope T1/P + T_inf : {bounds.brent_upper:,.0f}")
    print(f"  best possible speedup        : {bounds.max_speedup:.1f}")
    if args.strategy:
        with _farmed(args) as (jobs, cache):
            res = _plan_one(
                args.workload, args.topology, args.strategy, jobs, cache, seed=args.seed
            )
        print(f"\n{res.summary()}")
        print(f"  x lower bound  : {res.completion_time / bounds.lower:.2f}")
        print(f"  x greedy bound : {bounds.quality(res.completion_time):.2f}")


def _cmd_monitor(args: argparse.Namespace) -> None:
    from .experiments.runner import build_machine
    from .oracle.config import SimConfig
    from .oracle.monitor import render_film

    with _farmed(args) as (jobs, cache):
        pilot = _plan_one(
            args.workload, args.topology, args.strategy, jobs, cache, seed=args.seed
        )
        interval = max(pilot.completion_time / args.frames, 1.0)
        cfg = SimConfig(sample_interval=interval, sample_per_pe=True, seed=args.seed)
        res = _plan_one(args.workload, args.topology, args.strategy, jobs, cache, config=cfg)
    cols = getattr(build_machine(args.workload, args.topology, "local").topology, "cols", None)
    print(res.summary())
    print(render_film(res, cols=cols, color=args.color))


def _cmd_list(args: argparse.Namespace) -> None:
    from .core import STRATEGIES
    from .topology import TOPOLOGIES
    from .workload import WORKLOADS

    sections = {
        "strategies": STRATEGIES,
        "topologies": TOPOLOGIES,
        "workloads": WORKLOADS,
    }
    wanted = sections if args.what == "all" else {args.what: sections[args.what]}
    for index, (title, registry) in enumerate(wanted.items()):
        if index:
            print()
        print(f"{title}:")
        for name in registry.names():
            meta = registry.metadata(name)
            example = str(meta.get("example", name))
            summary = str(meta.get("summary", ""))
            print(f"  {name:<12} {example:<36} {summary}".rstrip())


def _cmd_cache(args: argparse.Namespace) -> None:
    from .parallel import ResultCache

    cache = ResultCache(args.dir)
    if args.action == "stats":
        stats = cache.stats()
        if getattr(args, "json", False):
            import json

            print(
                json.dumps(
                    {
                        "root": str(stats.root),
                        "schema": stats.schema,
                        "entries": stats.entries,
                        "total_bytes": stats.total_bytes,
                    },
                    indent=2,
                )
            )
            return
        print(f"cache dir    : {stats.root}")
        print(f"schema       : v{stats.schema}")
        print(f"entries      : {stats.entries}")
        print(f"size on disk : {stats.total_bytes / 1024:.1f} KiB")
    else:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")


def _cmd_bench(args: argparse.Namespace) -> None:
    from .obs import bench

    code = bench.main(
        quick=args.quick,
        out=args.out,
        compare=args.compare,
        tolerance=args.tolerance,
        as_json=args.json,
    )
    if code:
        raise SystemExit(code)


def _cmd_watch(args: argparse.Namespace) -> None:
    from .obs import watch

    try:
        if args.once:
            print(watch.watch_once(args.file, color=args.color, cols=args.cols))
        else:
            watch.watch_live(
                args.file, interval=args.interval, color=args.color, cols=args.cols
            )
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import POLICY_NAMES

    if args.replay is not None:
        from .serve import render_replay, run_replay

        policies = [p.strip() for p in args.policies.split(",") if p.strip()]
        unknown = sorted(set(policies) - set(POLICY_NAMES))
        if unknown:
            print(
                f"repro: error: unknown serve polic"
                f"{'y' if len(unknown) == 1 else 'ies'}: {', '.join(unknown)} "
                f"(have: {', '.join(POLICY_NAMES)})",
                file=sys.stderr,
            )
            return 2
        try:
            stats = run_replay(
                args.replay,
                policies=policies,
                workers=args.workers,
                window=args.window,
                max_batch=args.max_batch,
                seed=args.seed,
                speed=args.speed,
                use_cache=not args.no_cache,
            )
        except (OSError, ValueError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        print(render_replay(stats))
        return 0

    if args.policy not in POLICY_NAMES:
        print(
            f"repro: error: unknown serve policy {args.policy!r} "
            f"(have: {', '.join(POLICY_NAMES)})",
            file=sys.stderr,
        )
        return 2
    knobs = dict(
        workers=args.workers,
        policy=args.policy,
        window=args.window,
        max_batch=args.max_batch,
        high_water=args.high_water,
        queue_depth=args.queue_depth,
        no_cache=args.no_cache,
        seed=args.seed,
    )
    if args.stdin:
        from .serve import serve_stdin

        return serve_stdin(**knobs)
    from .serve import serve_forever

    return serve_forever(host=args.host, port=args.port, **knobs)


def _cmd_submit(args: argparse.Namespace) -> int:
    import http.client
    import json

    conn = http.client.HTTPConnection(args.host, args.port, timeout=args.timeout)
    body = json.dumps({"spec": args.spec})
    try:
        conn.request(
            "POST", "/run", body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
    except (OSError, ValueError) as exc:
        print(
            f"repro: error: no serve instance at "
            f"http://{args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 2
    finally:
        conn.close()
    if response.status != 200:
        print(
            f"repro: error: serve answered {response.status}: "
            f"{payload.get('error', payload)}",
            file=sys.stderr,
        )
        return 1
    shown = payload if args.envelope else payload["result"]
    # Same canonical rendering as `repro run --json`, so the outputs of
    # a direct run and a served run diff byte-for-byte.
    print(json.dumps(shown, sort_keys=True, separators=(",", ":")))
    return 0


def _default_baseline() -> "str | None":
    """The baseline file ``repro lint`` uses when ``--baseline`` is absent.

    Checked in order: ``lint-baseline.json`` in the current directory,
    then next to the source checkout (two levels above the package, the
    repo root when running from ``src/``).
    """
    from pathlib import Path

    from .lint import default_root

    for candidate in (
        Path.cwd() / "lint-baseline.json",
        default_root().parent.parent / "lint-baseline.json",
    ):
        if candidate.is_file():
            return str(candidate)
    return None


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import Baseline, run_lint
    from .lint.engine import anchors_for
    from .lint.rules import RULES

    if args.list_rules:
        for name in RULES.names():
            entry = RULES.entry(name)
            summary = entry.metadata.get("summary", "")
            print(f"{name}: {summary}" if summary else name)
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(RULES.names()))
        if unknown:
            print(
                f"repro: error: unknown lint rule(s): {', '.join(unknown)} "
                f"(see `repro lint --list-rules`)",
                file=sys.stderr,
            )
            return 2

    from pathlib import Path

    baseline_path = args.baseline if args.baseline else _default_baseline()
    baseline = None
    if (
        not args.no_baseline
        and baseline_path is not None
        # --write-baseline may target a file that does not exist yet
        and not (args.write_baseline and not Path(baseline_path).is_file())
    ):
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2

    paths = args.paths or None
    try:
        result = run_lint(paths, baseline=baseline, rules=rules)
    except FileNotFoundError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or "lint-baseline.json"
        anchors = anchors_for(result, paths)
        fresh = Baseline.from_findings(result.findings, anchors)
        kept = baseline.entries if baseline is not None else ()
        kept = tuple(e for e in kept if e in baseline.used) if baseline else ()
        Baseline(entries=kept + fresh.entries).save(target)
        print(
            f"[lint] wrote {len(kept) + len(fresh.entries)} entries to "
            f"{target} — fill in the TODO reasons",
            file=sys.stderr,
        )
        return 0

    if args.prune_baseline:
        if baseline is None or baseline_path is None:
            print(
                "repro: error: --prune-baseline needs a baseline file "
                "(none found, or --no-baseline given)",
                file=sys.stderr,
            )
            return 2
        kept = tuple(e for e in baseline.entries if e in baseline.used)
        dropped = len(baseline.entries) - len(kept)
        Baseline(entries=kept).save(baseline_path)
        print(
            f"[lint] pruned {dropped} stale entr"
            f"{'y' if dropped == 1 else 'ies'} from {baseline_path} "
            f"({len(kept)} kept)",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        print(result.render_json())
    elif args.format == "github":
        print(result.render_github())
    else:
        print(result.render_text(explain=args.explain))
    return 0 if result.clean else 1


_COMMANDS = {
    "run": _cmd_run,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "plots": _cmd_plots,
    "timeseries": _cmd_timeseries,
    "hypercube": _cmd_hypercube,
    "scaling": _cmd_scaling,
    "large": _cmd_large,
    "grainsize": _cmd_grainsize,
    "stream": _cmd_stream,
    "zoo": _cmd_zoo,
    "bounds": _cmd_bounds,
    "monitor": _cmd_monitor,
    "cache": _cmd_cache,
    "list": _cmd_list,
    "bench": _cmd_bench,
    "watch": _cmd_watch,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from .obs import telemetry

    telemetry.init_from_env()
    args = _build_parser().parse_args(argv)
    if getattr(args, "full", False):
        import os

        os.environ["REPRO_FULL"] = "1"
    code = _COMMANDS[args.command](args)
    return 0 if code is None else int(code)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
