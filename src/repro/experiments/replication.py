"""Multi-seed replication: confidence intervals for the paper's claims.

The paper reports single runs per cell; our simulations break ties with
a seeded RNG, so any single-seed ratio carries sampling noise.  This
module reruns a comparison across seeds and reports mean, standard
deviation and a t-based confidence interval, so benches can assert the
conclusion is not a tie-breaking artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core import Strategy, paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology
from ..workload import Program
from .plan import ExperimentPlan, execute, paired, planned_run

__all__ = [
    "Replication",
    "metric_plan",
    "pair_plan",
    "replicate_metric",
    "replicate_pair",
]

# Two-sided 95% Student-t critical values for df = 1..30 (no scipy
# dependency at runtime keeps this importable everywhere; scipy users
# can of course compute their own).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t95(df: int) -> float:
    """Two-sided 95% t critical value (1.96 beyond the tabulated range)."""
    if df < 1:
        raise ValueError("need at least 2 samples for an interval")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class Replication:
    """Summary of one metric across seeds."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def ci95(self) -> tuple[float, float]:
        """95% confidence interval for the mean."""
        if self.n < 2:
            return (self.mean, self.mean)
        half = t95(self.n - 1) * self.std / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def excludes(self, value: float) -> bool:
        """True when ``value`` lies outside the 95% CI."""
        lo, hi = self.ci95
        return value < lo or value > hi

    def __str__(self) -> str:
        lo, hi = self.ci95
        return f"{self.mean:.3f} (95% CI [{lo:.3f}, {hi:.3f}], n={self.n})"


def pair_plan(
    program: Program,
    topology: Topology,
    seeds: Sequence[int] = range(1, 9),
    config: SimConfig | None = None,
) -> ExperimentPlan:
    """CWN/GM pairs across seeds as a plan; reduces to ratio statistics."""
    family = topology.family
    runs = tuple(
        planned_run(program, topology, strategy, config=config, seed=seed)
        for seed in seeds
        for strategy in (paper_cwn(family), paper_gm(family))
    )
    meta = tuple(seed for seed in seeds for _ in range(2))

    def _reduce(results: Sequence[SimResult], labels: Sequence[Any]) -> Replication:
        return Replication(
            tuple(cwn.speedup / gm.speedup for cwn, gm, _seed in paired(results, labels))
        )

    return ExperimentPlan("replicate:pair", runs, _reduce, meta)


def replicate_pair(
    program: Program,
    topology: Topology,
    seeds: Sequence[int] = range(1, 9),
    config: SimConfig | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Replication:
    """CWN/GM speedup ratio across seeds (both sides share each seed).

    ``jobs``/``cache`` route the 2x|seeds| runs through the
    :mod:`repro.parallel` farm — the statistically honest regime (many
    seeds per point) is exactly where fan-out pays.  Results are
    identical to the serial path; programs or topologies the spec
    grammar cannot express run in-process.
    """
    return execute(pair_plan(program, topology, seeds, config), jobs=jobs, cache=cache)


def metric_plan(
    program: Program,
    topology: Topology,
    strategy_factory: Callable[[], Strategy],
    metric: str = "speedup",
    seeds: Sequence[int] = range(1, 9),
    config: SimConfig | None = None,
) -> ExperimentPlan:
    """One strategy across seeds as a plan; reduces to metric statistics.

    ``strategy_factory`` is called once per seed (strategies carry
    per-run state); ``metric`` names a SimResult attribute or property.
    """
    runs = tuple(
        planned_run(program, topology, strategy_factory(), config=config, seed=seed)
        for seed in seeds
    )
    meta = tuple(seeds)

    def _reduce(results: Sequence[SimResult], labels: Sequence[Any]) -> Replication:
        return Replication(tuple(float(getattr(res, metric)) for res in results))

    return ExperimentPlan(f"replicate:{metric}", runs, _reduce, meta)


def replicate_metric(
    program: Program,
    topology: Topology,
    strategy_factory: Callable[[], Strategy],
    metric: str = "speedup",
    seeds: Sequence[int] = range(1, 9),
    config: SimConfig | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> Replication:
    """Any SimResult attribute across seeds for one strategy (farmable)."""
    return execute(
        metric_plan(program, topology, strategy_factory, metric, seeds, config),
        jobs=jobs,
        cache=cache,
    )
