"""Multi-seed replication: confidence intervals for the paper's claims.

The paper reports single runs per cell; our simulations break ties with
a seeded RNG, so any single-seed ratio carries sampling noise.  This
module reruns a comparison across seeds and reports mean, standard
deviation and a t-based confidence interval, so benches can assert the
conclusion is not a tie-breaking artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core import Strategy, paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..topology import Topology
from ..workload import Program
from .runner import simulate

__all__ = ["Replication", "replicate_pair", "replicate_metric"]

# Two-sided 95% Student-t critical values for df = 1..30 (no scipy
# dependency at runtime keeps this importable everywhere; scipy users
# can of course compute their own).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t95(df: int) -> float:
    """Two-sided 95% t critical value (1.96 beyond the tabulated range)."""
    if df < 1:
        raise ValueError("need at least 2 samples for an interval")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class Replication:
    """Summary of one metric across seeds."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def ci95(self) -> tuple[float, float]:
        """95% confidence interval for the mean."""
        if self.n < 2:
            return (self.mean, self.mean)
        half = t95(self.n - 1) * self.std / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def excludes(self, value: float) -> bool:
        """True when ``value`` lies outside the 95% CI."""
        lo, hi = self.ci95
        return value < lo or value > hi

    def __str__(self) -> str:
        lo, hi = self.ci95
        return f"{self.mean:.3f} (95% CI [{lo:.3f}, {hi:.3f}], n={self.n})"


def replicate_pair(
    program: Program,
    topology: Topology,
    seeds: Sequence[int] = range(1, 9),
    config: SimConfig | None = None,
    jobs: int | None = None,
    cache: "ResultCache | None" = None,
) -> Replication:
    """CWN/GM speedup ratio across seeds (both sides share each seed).

    ``jobs``/``cache`` route the 2x|seeds| runs through the
    :mod:`repro.parallel` farm — the statistically honest regime (many
    seeds per point) is exactly where fan-out pays.  Results are
    identical to the serial path; programs or topologies the spec
    grammar cannot express fall back to in-process execution.
    """
    family = topology.family
    if jobs is not None or cache is not None:
        try:
            from ..parallel import RunSpec, run_batch

            specs = [
                RunSpec.build(program, topology, strategy, config=config, seed=seed)
                for seed in seeds
                for strategy in (paper_cwn(family), paper_gm(family))
            ]
        except ValueError:
            pass  # unspellable spec: fall through to the serial loop
        else:
            report = run_batch(specs, jobs=jobs, cache=cache)
            return Replication(
                tuple(
                    cwn.speedup / gm.speedup
                    for cwn, gm in zip(report.results[0::2], report.results[1::2])
                )
            )
    ratios = []
    for seed in seeds:
        cwn = simulate(program, topology, paper_cwn(family), config=config, seed=seed)
        gm = simulate(program, topology, paper_gm(family), config=config, seed=seed)
        ratios.append(cwn.speedup / gm.speedup)
    return Replication(tuple(ratios))


def replicate_metric(
    program: Program,
    topology: Topology,
    strategy_factory,
    metric: str = "speedup",
    seeds: Sequence[int] = range(1, 9),
    config: SimConfig | None = None,
    jobs: int | None = None,
    cache: "ResultCache | None" = None,
) -> Replication:
    """Any SimResult attribute across seeds for one strategy.

    ``strategy_factory`` is called per seed (strategies carry per-run
    state); ``metric`` names a SimResult attribute or property.
    ``jobs``/``cache`` fan the seeds out through the farm when the
    factory's strategies are spec-expressible (else serial fallback).
    """
    if jobs is not None or cache is not None:
        try:
            from ..parallel import RunSpec, run_batch

            specs = [
                RunSpec.build(
                    program, topology, strategy_factory(), config=config, seed=seed
                )
                for seed in seeds
            ]
        except ValueError:
            pass  # unspellable spec: fall through to the serial loop
        else:
            report = run_batch(specs, jobs=jobs, cache=cache)
            return Replication(
                tuple(float(getattr(res, metric)) for res in report.results)
            )
    values = []
    for seed in seeds:
        strategy: Strategy = strategy_factory()
        res = simulate(program, topology, strategy, config=config, seed=seed)
        values.append(float(getattr(res, metric)))
    return Replication(tuple(values))
