"""Table 3 — distribution of goal-message travel distances.

The paper's communication-cost analysis: for Fibonacci of 18 on a 10x10
grid it histograms how far each goal travelled before executing.  CWN's
row (mean 3.15 hops, a mode at 1 and a pile-up at the radius because "a
message that has gone that far must stop at that distance") against GM's
(mean 0.92, almost half the goals never leaving their source), giving
the paper's "typically thrice as much communication" remark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology, paper_grid
from ..workload import Fibonacci, Program
from .plan import ExperimentPlan, execute, planned_run
from .tables import format_table

__all__ = ["HopStudy", "hop_plan", "render_table3", "run_hop_study"]


@dataclass(frozen=True)
class HopStudy:
    """Paired hop histograms for one workload/topology."""

    workload: str
    topology: str
    cwn: SimResult
    gm: SimResult

    @property
    def communication_ratio(self) -> float:
        """CWN's mean goal distance over GM's (the "thrice" claim)."""
        gm_mean = self.gm.mean_goal_distance
        if gm_mean == 0:
            return float("inf")
        return self.cwn.mean_goal_distance / gm_mean


def hop_plan(
    fib_n: int = 18,
    topology: Topology | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> ExperimentPlan:
    """Table 3 as a plan: one CWN/GM pair with hop tracing on."""
    topology = topology or paper_grid(100)
    program: Program = Fibonacci(fib_n)
    family = topology.family
    runs = tuple(
        planned_run(program, topology, strategy, config=config, seed=seed)
        for strategy in (paper_cwn(family), paper_gm(family))
    )

    def _reduce(results: Sequence[SimResult], labels: Sequence[Any]) -> HopStudy:
        cwn_res, gm_res = results
        return HopStudy(cwn_res.workload, labels[0], cwn_res, gm_res)

    return ExperimentPlan("table3", runs, _reduce, (topology.name, topology.name))


def run_hop_study(
    fib_n: int = 18,
    topology: Topology | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> HopStudy:
    """Reproduce Table 3 (fib(18), 10x10 grid by default; farmable)."""
    return execute(hop_plan(fib_n, topology, config, seed), jobs=jobs, cache=cache)


def render_table3(study: HopStudy) -> str:
    """The paper's layout: one row per strategy, one column per hop count."""
    max_hop = max(
        max(study.cwn.hop_histogram, default=0), max(study.gm.hop_histogram, default=0)
    )
    headers = ["Hops"] + [str(h) for h in range(max_hop + 1)] + ["Average"]
    rows = []
    for label, res in (("CWN", study.cwn), ("GM", study.gm)):
        row: list[object] = [label]
        row += [res.hop_histogram.get(h, 0) for h in range(max_hop + 1)]
        row.append(res.mean_goal_distance)
        rows.append(row)
    title = (
        f"Distribution of message distance (Table 3): {study.workload} on {study.topology}"
    )
    return format_table(headers, rows, title=title)
