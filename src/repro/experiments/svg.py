"""Dependency-free SVG line charts for the figure reproductions.

The ASCII plots (:mod:`repro.experiments.plots`) are the terminal-native
rendering; this module writes the same series as real vector figures —
no matplotlib, just SVG markup — so benches can drop publication-style
versions of Plots 1-16 next to their text artifacts.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["svg_line_chart", "svg_spacetime"]

#: distinguishable series colors (CWN first, GM second, like the paper)
_COLORS = ("#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#f39c12", "#16a085")

_W, _H = 640, 400
_ML, _MR, _MT, _MB = 64, 16, 36, 48  # margins


def _x_map(x: float, lo: float, hi: float) -> float:
    span = (hi - lo) or 1.0
    return _ML + (x - lo) / span * (_W - _ML - _MR)


def _y_map(y: float, lo: float, hi: float) -> float:
    span = (hi - lo) or 1.0
    return _H - _MB - (y - lo) / span * (_H - _MT - _MB)


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    span = (hi - lo) or 1.0
    return [lo + span * i / (count - 1) for i in range(count)]


def svg_line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_max: float | None = None,
) -> str:
    """Render (x, y) series as a standalone SVG document string."""
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ValueError("no data to plot")
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(ys) * 1.05 or 1.0

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_W / 2}" y="20" text-anchor="middle" font-size="14">{title}</text>',
    ]

    # axes + grid + tick labels
    for ty in _ticks(y_lo, y_hi):
        py = _y_map(ty, y_lo, y_hi)
        parts.append(
            f'<line x1="{_ML}" y1="{py:.1f}" x2="{_W - _MR}" y2="{py:.1f}" '
            'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_ML - 6}" y="{py + 4:.1f}" text-anchor="end">{ty:.0f}</text>'
        )
    for tx in _ticks(x_lo, x_hi):
        px = _x_map(tx, x_lo, x_hi)
        parts.append(
            f'<text x="{px:.1f}" y="{_H - _MB + 18}" text-anchor="middle">{tx:.0f}</text>'
        )
    parts.append(
        f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" y2="{_H - _MB}" '
        'stroke="black"/>'
        f'<line x1="{_ML}" y1="{_MT}" x2="{_ML}" y2="{_H - _MB}" stroke="black"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{(_ML + _W - _MR) / 2}" y="{_H - 10}" text-anchor="middle">'
            f"{x_label}</text>"
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{(_MT + _H - _MB) / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {(_MT + _H - _MB) / 2})">{y_label}</text>'
        )

    # series
    for idx, (name, pts) in enumerate(series.items()):
        color = _COLORS[idx % len(_COLORS)]
        coords = " ".join(
            f"{_x_map(x, x_lo, x_hi):.1f},{_y_map(min(y, y_hi), y_lo, y_hi):.1f}"
            for x, y in sorted(pts)
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            'stroke-width="2"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{_x_map(x, x_lo, x_hi):.1f}" '
                f'cy="{_y_map(min(y, y_hi), y_lo, y_hi):.1f}" r="3" fill="{color}"/>'
            )
        # legend
        ly = _MT + 16 * idx
        parts.append(
            f'<rect x="{_W - _MR - 130}" y="{ly - 9}" width="12" height="12" '
            f'fill="{color}"/>'
            f'<text x="{_W - _MR - 112}" y="{ly + 2}">{name}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def svg_spacetime(
    per_pe_series: Sequence[tuple[float, Sequence[float]]],
    title: str = "",
    completion: float | None = None,
) -> str:
    """The paper's graphics monitor as a figure: a PE x time heat map.

    ``per_pe_series`` is a list of ``(sample_time, per_pe_utilizations)``
    — exactly what ``SimConfig(sample_interval=..., sample_per_pe=True)``
    collects into ``SimResult.samples``.  Each cell is one PE over one
    sampling interval, colored from blue (idle) through white to red
    (busy) — the paper's "continuum of colors representing relative
    activity on each PE (red: busy, blue: idle)".

    Returns a standalone SVG document string.
    """
    if not per_pe_series:
        raise ValueError("no samples to plot")
    n_pes = len(per_pe_series[0][1])
    if n_pes == 0 or any(len(row) != n_pes for _t, row in per_pe_series):
        raise ValueError("per-PE sample rows must be non-empty and equal length")
    n_cols = len(per_pe_series)
    cell_w = (_W - _ML - _MR) / n_cols
    cell_h = (_H - _MT - _MB) / n_pes

    def color(u: float) -> str:
        u = min(1.0, max(0.0, u))
        if u < 0.5:  # blue -> white
            f = u / 0.5
            r, g, b = int(41 + f * 214), int(128 + f * 127), 255
        else:  # white -> red
            f = (u - 0.5) / 0.5
            r, g, b = 255, int(255 - f * 198), int(255 - f * 212)
        return f"#{r:02x}{g:02x}{b:02x}"

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_W / 2}" y="20" text-anchor="middle" font-size="14">{title}</text>',
    ]
    for col, (_t, row) in enumerate(per_pe_series):
        x = _ML + col * cell_w
        for pe, util in enumerate(row):
            y = _MT + pe * cell_h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_w + 0.5:.1f}" '
                f'height="{cell_h + 0.5:.1f}" fill="{color(util)}"/>'
            )
    # axes labels: time ticks along the bottom, PE index on the left
    t_lo, t_hi = per_pe_series[0][0], per_pe_series[-1][0]
    if completion is not None:
        t_hi = max(t_hi, completion)
    for tick in _ticks(t_lo, t_hi):
        x = _ML + (tick - t_lo) / ((t_hi - t_lo) or 1.0) * (_W - _ML - _MR)
        parts.append(
            f'<text x="{x:.1f}" y="{_H - _MB + 16}" text-anchor="middle">'
            f"{tick:.0f}</text>"
        )
    parts.append(
        f'<text x="{(_ML + _W - _MR) / 2}" y="{_H - 10}" text-anchor="middle">time</text>'
        f'<text x="14" y="{(_MT + _H - _MB) / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {(_MT + _H - _MB) / 2})">PE</text>'
        f'<text x="{_ML}" y="{_MT - 6}" fill="#2980b9">blue = idle</text>'
        f'<text x="{_W - _MR}" y="{_MT - 6}" text-anchor="end" fill="#c0392b">red = busy</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)
