"""Experiment harness: everything needed to regenerate the paper's
tables and figures (see DESIGN.md section 4 for the full index).

* Table 1 -> :mod:`repro.experiments.optimization`
* Table 2 -> :mod:`repro.experiments.comparison`
* Table 3 -> :mod:`repro.experiments.hops`
* Plots 1-10 -> :mod:`repro.experiments.utilization_curves`
* Plots 11-16 -> :mod:`repro.experiments.timeseries`
* Appendix I -> :mod:`repro.experiments.hypercube_appendix`
"""

from __future__ import annotations

from . import scale
from .comparison import comparison_plan, render_table2, run_comparison, summarize_claims
from .grainsize import render_grainsize, run_grainsize
from .hops import render_table3, run_hop_study
from .large_machines import (
    large_machine_plan,
    render_large_machines,
    run_large_machines,
)
from .optimization import render_table1, run_optimization
from .plan import (
    ExecutionReport,
    ExperimentPlan,
    LocalRun,
    collect_reports,
    execute,
    merge_plans,
    planned_run,
)
from .plots import ascii_plot
from .query_stream import render_stream, run_stream
from .replication import Replication, replicate_metric, replicate_pair
from .runner import build_machine, simulate
from .scaling import render_scaling, run_scaling
from .sweep import PairedSweep, SweepPoint, SweepResult
from .tables import format_kv, format_table
from .timeseries import render_timeseries, rise_time, run_timeseries, tail_length
from .utilization_curves import render_curve, run_all_curves, run_curve

__all__ = [
    "ExecutionReport",
    "ExperimentPlan",
    "LocalRun",
    "PairedSweep",
    "SweepPoint",
    "SweepResult",
    "Replication",
    "ascii_plot",
    "build_machine",
    "collect_reports",
    "comparison_plan",
    "execute",
    "format_kv",
    "format_table",
    "large_machine_plan",
    "merge_plans",
    "planned_run",
    "render_curve",
    "render_grainsize",
    "render_large_machines",
    "render_scaling",
    "render_stream",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_timeseries",
    "replicate_metric",
    "replicate_pair",
    "run_grainsize",
    "run_large_machines",
    "run_stream",
    "rise_time",
    "run_all_curves",
    "run_comparison",
    "run_curve",
    "run_hop_study",
    "run_optimization",
    "run_scaling",
    "run_timeseries",
    "scale",
    "simulate",
    "summarize_claims",
    "tail_length",
]
