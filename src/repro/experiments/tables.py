"""Plain-text table rendering for experiment reports.

Every bench prints through these helpers so the harness output is
greppable and diffable: fixed-width columns, one header row, no box
drawing.  (The paper's tables are reproduced as text; EXPERIMENTS.md
embeds the rendered output directly.)
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["format_table", "format_kv"]


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
    align_first_left: bool = True,
) -> str:
    """Render rows as a fixed-width text table.

    Numeric cells are right-aligned, the first column (labels) left-
    aligned by default.  Floats render with 2 decimals.
    """
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0 and align_first_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_kv(pairs: dict[str, Any], title: str = "") -> str:
    """Render a key/value block (parameter listings etc.)."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {_fmt_cell(v)}" for k, v in pairs.items())
    return "\n".join(lines)
