"""The experiment spine: declarative plan → farm → reduce.

Every result in this reproduction — Table 1's parameter optimization,
Table 2's speedup matrix, Table 3's hop counts, the utilization curves,
the scaling and grain-size studies — is a *grid of independent runs*
followed by a fold.  This module makes that shape explicit:

* a **plan builder** is a pure function that emits an
  :class:`ExperimentPlan`: an ordered list of runs (canonical
  :class:`~repro.parallel.spec.RunSpec` where the spec grammar can
  express the run, :class:`LocalRun` thunks where it cannot) plus
  per-run metadata (cell labels, axis values);
* a **reducer** is a pure function folding the returned
  :class:`~repro.oracle.stats.SimResult` list (plus the metadata) into
  the experiment's existing result type;
* :func:`execute` is the single engine between them: it routes every
  spec-expressible run through :func:`repro.parallel.run_batch` — which
  does all fan-out (``jobs=``), content-addressed caching (``cache=``),
  retry and resumability — and runs the rare unspellable leftovers
  in-process.

Because the engine is shared, *every* experiment is parallel, cached
and resumable by construction: a new experiment only writes a builder
and a reducer.  Plans compose too — :func:`merge_plans` concatenates
several plans into one batch so a whole plot family fans out together.

The :func:`collect_reports` context manager captures one
:class:`ExecutionReport` per :func:`execute` call for callers (the CLI)
that want farm telemetry without threading a callback through every
experiment signature.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from ..obs import telemetry as _telemetry
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache, RunSpec, run_batch
from ..parallel.pool import RunFailure
from ..scenario import Scenario

__all__ = [
    "ExecutionReport",
    "ExperimentPlan",
    "LocalRun",
    "collect_reports",
    "execute",
    "merge_plans",
    "paired",
    "planned_run",
    "planned_scenario",
]

#: progress callback: (completed, total, source) with source
#: "cache" | "sim" | "local"
PlanProgressFn = Callable[[int, int, str], None]

#: reducer contract: (results, meta) -> experiment result, where
#: ``results[i]`` and ``meta[i]`` describe run ``i`` of the plan.
Reducer = Callable[[Sequence[SimResult], Sequence[Any]], Any]


@dataclass(frozen=True)
class LocalRun:
    """A run the spec grammar cannot express, as an in-process thunk.

    Custom strategy objects, recorded workloads and other constructs
    without a factory spelling cannot ship to worker processes or be
    content-addressed; they still belong in a plan.  ``thunk`` runs the
    simulation in the calling process; ``label`` names the run for
    progress and error messages.
    """

    thunk: Callable[[], SimResult]
    label: str = ""


#: one plan entry: farmable spec, or in-process fallback
PlanRun = RunSpec | LocalRun


@dataclass(frozen=True)
class ExperimentPlan:
    """One experiment as data: ordered runs, metadata, and a reducer.

    ``meta[i]`` labels ``runs[i]`` (cell coordinates, axis values —
    whatever the reducer needs to place result ``i``); an empty ``meta``
    means no labels, and the reducer receives ``None`` per run.
    """

    name: str
    runs: tuple[PlanRun, ...]
    reduce: Reducer
    meta: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.meta and len(self.meta) != len(self.runs):
            raise ValueError(
                f"plan {self.name!r}: {len(self.meta)} meta entries for "
                f"{len(self.runs)} runs"
            )

    @property
    def labels(self) -> tuple[Any, ...]:
        """``meta`` padded to one entry per run (``None`` when absent)."""
        return self.meta if self.meta else (None,) * len(self.runs)

    @classmethod
    def from_scenarios(
        cls,
        name: str,
        scenarios: "Sequence[Scenario]",
        reduce: Reducer,
        meta: Sequence[Any] = (),
    ) -> "ExperimentPlan":
        """Build a plan straight from :class:`~repro.scenario.Scenario` values.

        Each scenario becomes a farmable :class:`~repro.parallel.spec.RunSpec`
        where the spec grammar can express it, and a :class:`LocalRun`
        otherwise (see :func:`planned_scenario`).
        """
        return cls(name, tuple(planned_scenario(sc) for sc in scenarios), reduce, tuple(meta))

    def scenarios(self) -> tuple["Scenario | None", ...]:
        """The plan's runs as scenarios (``None`` for opaque local thunks)."""
        return tuple(
            run.scenario() if isinstance(run, RunSpec) else None for run in self.runs
        )


def planned_scenario(scenario: "Scenario") -> PlanRun:
    """One plan entry for ``scenario``: a canonical spec, or a fallback.

    Scenarios the spec grammar can express become
    :class:`~repro.parallel.spec.RunSpec` (farmable, cacheable); the
    rest degrade to a :class:`LocalRun` closing over the live objects —
    the plan still executes, serially and uncached, exactly as the old
    hand-rolled loops did.
    """
    try:
        return RunSpec.from_scenario(scenario)
    except ValueError:
        return LocalRun(thunk=scenario.run, label=scenario.label())


def planned_run(
    workload: Any,
    topology: Any,
    strategy: Any,
    config: SimConfig | None = None,
    seed: int | None = None,
    start_pe: int = 0,
    queries: int = 1,
    arrival_spacing: float = 0.0,
    arrival_pes: Sequence[int] | None = None,
    arrival_times: Sequence[float] | None = None,
) -> PlanRun:
    """One run for a plan, from loose arguments (mirrors ``simulate``).

    Kwargs-style sugar over :func:`planned_scenario`.
    """
    return planned_scenario(
        Scenario.of(
            workload,
            topology,
            strategy,
            config=config,
            seed=seed,
            start_pe=start_pe,
            queries=queries,
            arrival_spacing=arrival_spacing,
            arrival_pes=arrival_pes,
            arrival_times=arrival_times,
        )
    )


def paired(
    results: Sequence[SimResult], labels: Sequence[Any]
) -> Iterator[tuple[SimResult, SimResult, Any]]:
    """Walk stride-2 (A, B) run pairs with each pair's shared label.

    The paper's studies are overwhelmingly *paired*: every cell runs
    strategy A then strategy B under identical conditions, emitted as
    adjacent plan runs.  Reducers iterate this instead of re-deriving
    the interleave — one place owns the pairing convention.
    """
    for i in range(0, len(results), 2):
        yield results[i], results[i + 1], labels[i]


def merge_plans(name: str, plans: Sequence[ExperimentPlan]) -> ExperimentPlan:
    """Concatenate plans into one batch; reduces to a list of sub-results.

    The merged plan's runs are every sub-plan's runs in order, so one
    :func:`execute` call fans a whole experiment family (all ten
    utilization plots, all six time-series pilots) out together instead
    of farming each member separately.
    """
    plans = list(plans)
    runs: list[PlanRun] = []
    meta: list[Any] = []
    for plan in plans:
        runs.extend(plan.runs)
        meta.extend(plan.labels)

    def _reduce(results: Sequence[SimResult], labels: Sequence[Any]) -> list[Any]:
        out = []
        offset = 0
        for plan in plans:
            width = len(plan.runs)
            out.append(
                plan.reduce(
                    list(results[offset : offset + width]),
                    list(labels[offset : offset + width]),
                )
            )
            offset += width
        return out

    return ExperimentPlan(name, tuple(runs), _reduce, tuple(meta))


@dataclass
class ExecutionReport:
    """Telemetry of one :func:`execute` call (see :func:`collect_reports`)."""

    plan: str
    runs: int
    hits: int
    simulated: int
    local: int
    retried: int
    failures: list[RunFailure] = field(default_factory=list)

    @property
    def executed(self) -> int:
        """Runs that actually simulated (farm misses + local thunks)."""
        return self.simulated + self.local

    def __str__(self) -> str:
        return (
            f"{self.plan}: {self.runs} runs, {self.hits} cache hits, "
            f"{self.executed} simulated"
        )


#: active collect_reports() sinks (append-only while a with-block is open)
_collectors: list[list[ExecutionReport]] = []


@contextmanager
def collect_reports() -> Iterator[list[ExecutionReport]]:
    """Capture an :class:`ExecutionReport` per :func:`execute` call.

    Nestable and re-entrant (every active collector sees every report);
    the CLI wraps each experiment command in one of these to print its
    ``[farm]`` summary without the experiment signatures knowing.
    """
    sink: list[ExecutionReport] = []
    _collectors.append(sink)
    try:
        yield sink
    finally:
        _collectors.remove(sink)


def execute(
    plan: ExperimentPlan,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    retries: int = 1,
    progress: PlanProgressFn | None = None,
) -> Any:
    """Run a plan and return its reduced result.

    The spec-expressible runs go through :func:`repro.parallel.run_batch`
    — ``jobs`` worker processes for the cache misses (``None``/1 =
    serial in-process, 0 = all cores), every fresh result persisted to
    ``cache`` before the batch returns, transient failures retried —
    and the :class:`LocalRun` leftovers execute in this process.
    Results reach the reducer in plan order regardless of completion
    order, so ``execute(plan)`` with no farm arguments is the old serial
    loop, bit for bit, and ``execute(plan, jobs=N, cache=...)`` is the
    same result computed as fast as the hardware allows.
    """
    runs = plan.runs
    total = len(runs)
    results: list[SimResult | None] = [None] * total
    done = 0

    def advance(source: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, source)

    spec_indices = [i for i, run in enumerate(runs) if isinstance(run, RunSpec)]
    report = None
    if spec_indices:
        report = run_batch(
            [runs[i] for i in spec_indices],
            jobs=jobs,
            cache=cache,
            use_cache=use_cache,
            retries=retries,
            progress=(lambda _d, _t, source: advance(source)) if progress else None,
        )
        for i, result in zip(spec_indices, report.results):
            results[i] = result
    local = 0
    for i, run in enumerate(runs):
        if isinstance(run, LocalRun):
            results[i] = run.thunk()
            local += 1
            advance("local")

    outcome = ExecutionReport(
        plan=plan.name,
        runs=total,
        hits=report.hits if report else 0,
        simulated=report.simulated if report else 0,
        local=local,
        retried=report.retried if report else 0,
        failures=list(report.failures) if report else [],
    )
    for sink in _collectors:
        sink.append(outcome)
    tele = _telemetry.sink()
    if tele is not None:
        tele.emit(
            "plan.report",
            plan=outcome.plan,
            runs=outcome.runs,
            hits=outcome.hits,
            simulated=outcome.simulated,
            local=outcome.local,
            retried=outcome.retried,
            failures=len(outcome.failures),
        )

    return plan.reduce(results, plan.labels)
