"""Table 1 — the parameter-optimization experiments.

Section 3.1: "In the interest of fairness, the parameters must be chosen
in such a way each scheme is working at its best.  We chose a few sample
points in the space of planned experiments, and ran the simulations for
various combination of parameters.  The winning combinations were used
for the comparison experiments."

:func:`parameter_plan` builds one scheme's sweep as a declarative
:class:`~repro.experiments.plan.ExperimentPlan`; :func:`optimize_cwn`
and :func:`optimize_gm` execute it at configurable sample points and
return every combination's score (mean speedup over the sample points)
plus the winner; :func:`run_optimization` does both for a topology
family and renders a Table-1-style parameter listing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core import CWN, GradientModel
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology, paper_dlm, paper_grid
from ..workload import DivideConquer, Fibonacci, Program
from .plan import ExperimentPlan, execute, planned_run
from .tables import format_table

__all__ = [
    "SweepPoint",
    "default_sample_points",
    "optimize_cwn",
    "optimize_gm",
    "parameter_plan",
    "render_table1",
    "run_optimization",
]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter combination's aggregate score."""

    params: dict[str, Any]
    mean_speedup: float
    speedups: tuple[float, ...]


def default_sample_points(family: str, small: bool = False) -> list[tuple[Program, Topology]]:
    """Sample points mirroring the paper's setup: mid-size problems on a
    mid-size machine of the family under study."""
    make = paper_grid if family == "grid" else paper_dlm
    topo = make(64 if small else 100)
    sizes: Sequence[Program] = (
        [Fibonacci(11), DivideConquer(1, 144)]
        if small
        else [Fibonacci(13), DivideConquer(1, 377)]
    )
    return [(program, topo) for program in sizes]


def parameter_plan(
    build: Callable[..., Any],
    grid: list[dict[str, Any]],
    points: list[tuple[Program, Topology]],
    config: SimConfig | None = None,
    seed: int = 1,
    name: str = "table1",
) -> ExperimentPlan:
    """One scheme's parameter sweep as a plan.

    One run per (parameter combination, sample point); ``build`` is
    called afresh for every run (strategies are single-run objects).
    The reducer scores each combination by mean speedup over the sample
    points and returns the grid best-first.
    """
    runs = tuple(
        planned_run(program, topo, build(**params), config=config, seed=seed)
        for params in grid
        for program, topo in points
    )
    meta = tuple(params for params in grid for _ in points)

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> list[SweepPoint]:
        per_point = len(points)
        scored = []
        for i, params in enumerate(grid):
            chunk = results[i * per_point : (i + 1) * per_point]
            speedups = tuple(res.speedup for res in chunk)
            scored.append(SweepPoint(params, sum(speedups) / len(speedups), speedups))
        scored.sort(key=lambda sp: -sp.mean_speedup)
        return scored

    return ExperimentPlan(name, runs, _reduce, meta)


def _sweep(
    build: Callable[..., Any],
    grid: list[dict[str, Any]],
    points: list[tuple[Program, Topology]],
    config: SimConfig | None,
    seed: int,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    name: str = "table1",
) -> list[SweepPoint]:
    return execute(
        parameter_plan(build, grid, points, config=config, seed=seed, name=name),
        jobs=jobs,
        cache=cache,
    )


def optimize_cwn(
    points: list[tuple[Program, Topology]],
    radii: Sequence[int] = (2, 3, 5, 7, 9),
    horizons: Sequence[int] = (0, 1, 2, 3),
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[SweepPoint]:
    """Sweep CWN's (radius, horizon) space; best first."""
    grid = [
        {"radius": r, "horizon": h}
        for r in radii
        for h in horizons
        if h <= r
    ]
    return _sweep(
        lambda **p: CWN(**p), grid, points, config, seed, jobs, cache, name="table1:cwn"
    )


def optimize_gm(
    points: list[tuple[Program, Topology]],
    high_water_marks: Sequence[float] = (1, 2, 3),
    low_water_marks: Sequence[float] = (1, 2),
    intervals: Sequence[float] = (10.0, 20.0, 40.0),
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[SweepPoint]:
    """Sweep GM's (high, low, interval) space; best first."""
    grid = [
        {"high_water_mark": h, "low_water_mark": l, "interval": i}
        for h in high_water_marks
        for l in low_water_marks
        for i in intervals
        if l <= h
    ]
    return _sweep(
        lambda **p: GradientModel(**p),
        grid,
        points,
        config,
        seed,
        jobs,
        cache,
        name="table1:gm",
    )


def run_optimization(
    families: tuple[str, ...] = ("grid", "dlm"),
    small: bool = False,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> dict[str, dict[str, list[SweepPoint]]]:
    """Both sweeps for each family: ``{family: {"cwn": [...], "gm": [...]}}``.

    ``jobs``/``cache`` fan the parameter grids out through the
    :mod:`repro.parallel` farm (identical results, see ``run_comparison``).
    """
    out: dict[str, dict[str, list[SweepPoint]]] = {}
    for family in families:
        points = default_sample_points(family, small=small)
        out[family] = {
            "cwn": optimize_cwn(points, config=config, seed=seed, jobs=jobs, cache=cache),
            "gm": optimize_gm(points, config=config, seed=seed, jobs=jobs, cache=cache),
        }
    return out


def render_table1(results: dict[str, dict[str, list[SweepPoint]]]) -> str:
    """A Table-1-style "Selected Parameters" listing (winners per family)."""
    families = list(results)
    rows = []
    param_names = [
        ("cwn", "radius"),
        ("cwn", "horizon"),
        ("gm", "high_water_mark"),
        ("gm", "low_water_mark"),
        ("gm", "interval"),
    ]
    for scheme, pname in param_names:
        row: list[object] = [f"{scheme.upper()}: {pname.replace('_', '-')}"]
        for family in families:
            best = results[family][scheme][0]
            row.append(best.params[pname])
        rows.append(row)
    headers = ["parameter"] + [f"{f} topologies" for f in families]
    return format_table(headers, rows, title="Selected Parameters (Table 1)")
