"""Query streams — the open-system extension.

The paper's runs are closed: one query, one machine, run to completion.
Its own diagnosis of CWN's weakness, though, is about *sustained*
operation: once every PE has work, CWN's inability to re-shuffle starts
to cost, while GM "manages to maintain 100% when it reaches that level".
A stream of queries arriving at different PEs is the regime where that
difference should matter most — work keeps arriving at arbitrary points
and the machine is (nearly) never empty.

:func:`stream_plan` builds the study as a declarative
:class:`~repro.experiments.plan.ExperimentPlan` (open-system runs are
ordinary specs now that :class:`~repro.parallel.spec.RunSpec` carries
arrival parameters); :func:`run_stream` injects ``queries`` instances
of a program, ``spacing`` apart, round-robin over injection PEs spread
across the machine, and reports makespan, mean/max response time and
utilization for each strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core import Strategy, paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology, paper_grid
from ..workload import Fibonacci, Program
from .plan import ExperimentPlan, execute, planned_run
from .tables import format_table

__all__ = ["StreamResult", "render_stream", "run_stream", "stream_plan"]


@dataclass(frozen=True)
class StreamResult:
    """One strategy's behaviour under a query stream."""

    strategy: str
    makespan: float
    mean_response: float
    max_response: float
    utilization_percent: float
    results_ok: bool


def spread_pes(topology: Topology, count: int) -> list[int]:
    """``count`` injection points spread evenly over the PE index space."""
    n = topology.n
    return [(k * n) // count for k in range(count)]


def stream_plan(
    program: Program | None = None,
    topology: Topology | None = None,
    strategies: dict[str, Strategy] | None = None,
    queries: int = 8,
    spacing: float = 200.0,
    seed: int = 1,
    config: SimConfig | None = None,
) -> ExperimentPlan:
    """The stream study as a plan: one open-system run per strategy."""
    if queries < 1:
        raise ValueError(f"queries must be >= 1, got {queries}")
    program = program or Fibonacci(11)
    topology = topology or paper_grid(64)
    if strategies is None:
        strategies = {
            "cwn": paper_cwn(topology.family),
            "gm": paper_gm(topology.family),
        }
    arrival_pes = spread_pes(topology, queries)
    expected = program.expected_result()
    runs = tuple(
        planned_run(
            program,
            topology,
            strategy,
            config=config,
            seed=seed,
            queries=queries,
            arrival_spacing=spacing,
            arrival_pes=arrival_pes,
        )
        for strategy in strategies.values()
    )
    meta = tuple(strategies)

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> list[StreamResult]:
        out = []
        for name, res in zip(labels, results):
            responses = res.response_times
            # A single-query machine reports its result unwrapped.
            values = res.result_value if queries > 1 else [res.result_value]
            out.append(
                StreamResult(
                    strategy=name,
                    makespan=res.completion_time,
                    mean_response=sum(responses) / len(responses),
                    max_response=max(responses),
                    utilization_percent=res.utilization_percent,
                    results_ok=all(v == expected for v in values),
                )
            )
        return out

    return ExperimentPlan("stream", runs, _reduce, meta)


def run_stream(
    program: Program | None = None,
    topology: Topology | None = None,
    strategies: dict[str, Strategy] | None = None,
    queries: int = 8,
    spacing: float = 200.0,
    seed: int = 1,
    config: SimConfig | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[StreamResult]:
    """Drive each strategy with the same query stream (farmable)."""
    return execute(
        stream_plan(program, topology, strategies, queries, spacing, seed, config),
        jobs=jobs,
        cache=cache,
    )


def render_stream(results: list[StreamResult], header: str = "") -> str:
    rows = [
        (r.strategy, r.makespan, r.mean_response, r.max_response, r.utilization_percent)
        for r in results
    ]
    return format_table(
        ["strategy", "makespan", "mean response", "max response", "util %"],
        rows,
        title=header or "Query-stream study",
    )
