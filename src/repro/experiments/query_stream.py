"""Query streams — the open-system extension.

The paper's runs are closed: one query, one machine, run to completion.
Its own diagnosis of CWN's weakness, though, is about *sustained*
operation: once every PE has work, CWN's inability to re-shuffle starts
to cost, while GM "manages to maintain 100% when it reaches that level".
A stream of queries arriving at different PEs is the regime where that
difference should matter most — work keeps arriving at arbitrary points
and the machine is (nearly) never empty.

:func:`run_stream` injects ``queries`` instances of a program,
``spacing`` apart, round-robin over injection PEs spread across the
machine, and reports makespan, mean/max response time and utilization
for each strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Strategy, paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.machine import Machine
from ..topology import Topology, paper_grid
from ..workload import Fibonacci, Program
from .tables import format_table

__all__ = ["StreamResult", "render_stream", "run_stream"]


@dataclass(frozen=True)
class StreamResult:
    """One strategy's behaviour under a query stream."""

    strategy: str
    makespan: float
    mean_response: float
    max_response: float
    utilization_percent: float
    results_ok: bool


def spread_pes(topology: Topology, count: int) -> list[int]:
    """``count`` injection points spread evenly over the PE index space."""
    n = topology.n
    return [(k * n) // count for k in range(count)]


def run_stream(
    program: Program | None = None,
    topology: Topology | None = None,
    strategies: dict[str, Strategy] | None = None,
    queries: int = 8,
    spacing: float = 200.0,
    seed: int = 1,
    config: SimConfig | None = None,
) -> list[StreamResult]:
    """Drive each strategy with the same query stream."""
    program = program or Fibonacci(11)
    topology = topology or paper_grid(64)
    if strategies is None:
        strategies = {
            "cwn": paper_cwn(topology.family),
            "gm": paper_gm(topology.family),
        }
    arrival_pes = spread_pes(topology, queries)
    expected = program.expected_result()
    out = []
    for name, strategy in strategies.items():
        machine = Machine(
            topology,
            program,
            strategy,
            (config or SimConfig()).replace(seed=seed),
            queries=queries,
            arrival_spacing=spacing,
            arrival_pes=arrival_pes,
        )
        res = machine.run()
        responses = res.response_times
        out.append(
            StreamResult(
                strategy=name,
                makespan=res.completion_time,
                mean_response=sum(responses) / len(responses),
                max_response=max(responses),
                utilization_percent=res.utilization_percent,
                results_ok=all(v == expected for v in res.result_value),
            )
        )
    return out


def render_stream(results: list[StreamResult], header: str = "") -> str:
    rows = [
        (r.strategy, r.makespan, r.mean_response, r.max_response, r.utilization_percent)
        for r in results
    ]
    return format_table(
        ["strategy", "makespan", "mean response", "max response", "util %"],
        rows,
        title=header or "Query-stream study",
    )
