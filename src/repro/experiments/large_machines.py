"""Large-machine scaling study — the regime the paper argues about.

Section 4's conjecture is about *large* systems: CWN should beat the
Gradient Model "on large systems, which of course tend to have larger
diameters".  The paper stops at 400 PEs; the classic scaling study
(:mod:`repro.experiments.scaling`) sweeps the same sizes.  This study
rides the O(N) machine representation — closed-form routing, sparse
load beliefs — into 1024-4096-PE grids, 3-D tori and hypercubes, where
diameters range from 10 (hypercube) to 64 (the 64x64 torus): an order
of magnitude past the paper's largest machine, with the diameter axis
spread wide at fixed PE count.

:func:`large_machine_plan` builds the sweep as a declarative
:class:`~repro.experiments.plan.ExperimentPlan`; :func:`run_large_machines`
executes it (optionally farmed/cached); ``repro large`` is the CLI face
and ``benchmarks/bench_large_machines.py`` the regression harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import make as make_topology
from ..workload import Fibonacci, Program
from . import scale
from .plan import ExperimentPlan, execute, planned_run
from .tables import format_table

__all__ = [
    "LARGE_STRATEGIES",
    "LargeMachinePoint",
    "large_machine_plan",
    "large_topology_spec",
    "render_large_machines",
    "run_large_machines",
]

#: The paper's two competitors plus the conclusion's proposed improvement.
LARGE_STRATEGIES: tuple[str, ...] = ("cwn", "acwn", "gm")

#: Machine shapes per family and PE count.  Grids keep the aspect ratio
#: near square (largest diameter per PE), tori go cubic (same PE counts,
#: ~1/3 the diameter), hypercubes are the log-diameter extreme.
_LARGE_SHAPES: dict[str, dict[int, str]] = {
    "grid": {1024: "grid:32x32", 2048: "grid:32x64", 4096: "grid:64x64"},
    "torus3d": {
        1024: "torus3d:16x16x4",
        2048: "torus3d:16x16x8",
        4096: "torus3d:16x16x16",
    },
    "hypercube": {1024: "hypercube:10", 2048: "hypercube:11", 4096: "hypercube:12"},
}

_REDUCED_SIZES: tuple[int, ...] = (1024,)
_FULL_SIZES: tuple[int, ...] = (1024, 2048, 4096)


def large_topology_spec(family: str, n_pes: int) -> str:
    """The study's canonical shape for ``family`` at ``n_pes`` PEs."""
    try:
        return _LARGE_SHAPES[family][n_pes]
    except KeyError:
        raise ValueError(
            f"no large-machine shape for family {family!r} at {n_pes} PEs "
            f"(families {sorted(_LARGE_SHAPES)}, sizes {_FULL_SIZES})"
        ) from None


@dataclass(frozen=True)
class LargeMachinePoint:
    """One (machine, strategy) measurement of the large-machine sweep."""

    family: str
    n_pes: int
    diameter: int
    strategy: str
    speedup: float
    utilization: float
    completion_time: float


def large_machine_plan(
    program: Program | None = None,
    families: tuple[str, ...] = ("grid", "torus3d", "hypercube"),
    strategies: tuple[str, ...] = LARGE_STRATEGIES,
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> ExperimentPlan:
    """Machine sizes x families x strategies with a fixed workload.

    Reduced scale runs the 1024-PE machines; ``full`` (or
    ``REPRO_FULL=1``) extends to 2048 and 4096 PEs.  The default
    workload follows the classic scaling study: fib(15), or fib(18) at
    full scale, so large-machine points are directly comparable with the
    25-400-PE sweep.
    """
    if full is None:
        full = scale.full_scale()
    if program is None:
        program = Fibonacci(18 if full else 15)
    sizes = _FULL_SIZES if full else _REDUCED_SIZES
    runs = []
    meta: list[Any] = []
    for family in families:
        for n_pes in sizes:
            spec = large_topology_spec(family, n_pes)
            diameter = make_topology(spec).diameter
            for strategy in strategies:
                runs.append(planned_run(program, spec, strategy, config=config, seed=seed))
                meta.append((family, n_pes, diameter, strategy))

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> list[LargeMachinePoint]:
        return [
            LargeMachinePoint(
                family,
                n_pes,
                diameter,
                strategy,
                res.speedup,
                res.utilization,
                res.completion_time,
            )
            for res, (family, n_pes, diameter, strategy) in zip(results, labels)
        ]

    return ExperimentPlan("large-machines", tuple(runs), _reduce, tuple(meta))


def run_large_machines(
    program: Program | None = None,
    families: tuple[str, ...] = ("grid", "torus3d", "hypercube"),
    strategies: tuple[str, ...] = LARGE_STRATEGIES,
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[LargeMachinePoint]:
    """Execute :func:`large_machine_plan` (``jobs``/``cache`` farm it)."""
    return execute(
        large_machine_plan(program, families, strategies, full, config, seed),
        jobs=jobs,
        cache=cache,
    )


def render_large_machines(points: list[LargeMachinePoint]) -> str:
    """Per-machine strategy comparison, with the CWN/GM ratio column the
    diameter conjecture is judged on."""
    ratios: dict[tuple[str, int], float] = {}
    by_machine: dict[tuple[str, int], dict[str, LargeMachinePoint]] = {}
    for p in points:
        by_machine.setdefault((p.family, p.n_pes), {})[p.strategy] = p
    for key, per_strategy in by_machine.items():
        cwn = per_strategy.get("cwn")
        gm = per_strategy.get("gm")
        if cwn is not None and gm is not None and gm.speedup:
            ratios[key] = cwn.speedup / gm.speedup
    rows = [
        (
            f"{p.family}:{p.n_pes}",
            p.diameter,
            p.strategy,
            p.speedup,
            p.utilization,
            f"{ratios[(p.family, p.n_pes)]:.2f}"
            if p.strategy == "cwn" and (p.family, p.n_pes) in ratios
            else "",
        )
        for p in points
    ]
    return format_table(
        ["machine", "diameter", "strategy", "speedup", "utilization", "CWN/GM"],
        rows,
        title="Large-machine study: 1024-4096 PEs (the paper's conjecture, at scale)",
    )
