"""ASCII line plots for the paper's figure reproductions.

The paper's Plots 1-16 are utilization curves; in a terminal-only
environment we render them as character plots: one column per X sample,
one letter per series.  This is deliberately simple — the *numbers* are
the deliverable (EXPERIMENTS.md records them); the plots are for eyeballs.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_plot"]


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 72,
    height: int = 18,
    y_label: str = "%util",
    x_label: str = "x",
    y_max: float | None = None,
) -> str:
    """Render one or more (x, y) series as an ASCII plot.

    Each series gets the first letter of its name as its marker (upper-
    cased, disambiguated by position if needed).  Axes are linear; x and
    y ranges cover all series.  Marker collisions render as ``*``.
    """
    if not series or all(len(pts) == 0 for pts in series.values()):
        return f"{title}\n(no data)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = 0.0
    y_hi = y_max if y_max is not None else max(ys) * 1.05
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    used: set[str] = set()
    for name in series:
        mark = name[0].upper()
        while mark in used:
            mark = chr(ord(mark) + 1)
        used.add(mark)
        markers[name] = mark

    for name, pts in series.items():
        mark = markers[name]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((min(y, y_hi) - y_lo) / (y_hi - y_lo) * (height - 1))
            row = min(max(row, 0), height - 1)
            cell = grid[row][col]
            grid[row][col] = mark if cell in (" ", mark) else "*"

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(f"{m}={n}" for n, m in markers.items())
    lines.append(f"[{legend}]")
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = f"{y_hi:6.1f} |"
        elif i == height - 1:
            label = f"{y_lo:6.1f} |"
        else:
            label = "       |"
        lines.append(label + "".join(row_cells))
    lines.append("       +" + "-" * width)
    left = f"{x_lo:.0f}"
    right = f"{x_hi:.0f} {x_label}"
    pad = max(1, width - len(left) - len(right))
    lines.append("        " + left + " " * pad + right)
    return "\n".join(lines)
