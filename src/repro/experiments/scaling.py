"""Machine-size scaling study — the paper's diameter conjecture.

Section 4: "The superior performance of CWN on the grids leads us to
conjecture that it performs better than the GM on large systems, which
of course tend to have larger diameters."  This study fixes a workload
and sweeps machine size within each family, recording the CWN/GM ratio
against PE count and network diameter so the conjecture can be checked
directly rather than read off Table 2's corners.

:func:`scaling_plan` builds the sweep as a declarative
:class:`~repro.experiments.plan.ExperimentPlan`; :func:`run_scaling`
executes it (optionally farmed/cached).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import paper_dlm, paper_grid
from ..workload import Fibonacci, Program
from . import scale
from .plan import ExperimentPlan, execute, paired, planned_run
from .tables import format_table

__all__ = ["ScalingPoint", "render_scaling", "run_scaling", "scaling_plan"]


@dataclass(frozen=True)
class ScalingPoint:
    """One machine size's paired measurement."""

    family: str
    n_pes: int
    diameter: int
    cwn_speedup: float
    gm_speedup: float

    @property
    def ratio(self) -> float:
        return self.cwn_speedup / self.gm_speedup


def scaling_plan(
    program: Program | None = None,
    families: tuple[str, ...] = ("grid", "dlm"),
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> ExperimentPlan:
    """Machine sizes x families with a fixed workload (fib(15) default)."""
    if program is None:
        program = Fibonacci(15 if not scale.full_scale() else 18)
    runs = []
    meta: list[Any] = []
    for family in families:
        make = paper_grid if family == "grid" else paper_dlm
        for n_pes in scale.pe_counts(full):
            topo = make(n_pes)
            for strategy in (paper_cwn(family), paper_gm(family)):
                runs.append(
                    planned_run(program, topo, strategy, config=config, seed=seed)
                )
                meta.append((family, n_pes, topo.diameter))

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> list[ScalingPoint]:
        return [
            ScalingPoint(family, n_pes, diameter, cwn.speedup, gm.speedup)
            for cwn, gm, (family, n_pes, diameter) in paired(results, labels)
        ]

    return ExperimentPlan("scaling", tuple(runs), _reduce, tuple(meta))


def run_scaling(
    program: Program | None = None,
    families: tuple[str, ...] = ("grid", "dlm"),
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[ScalingPoint]:
    """Execute :func:`scaling_plan` (``jobs``/``cache`` farm the grid)."""
    return execute(
        scaling_plan(program, families, full, config, seed), jobs=jobs, cache=cache
    )


def render_scaling(points: list[ScalingPoint]) -> str:
    """Ratio against machine size and diameter, per family."""
    rows = [
        (
            f"{p.family}:{p.n_pes}",
            p.diameter,
            p.cwn_speedup,
            p.gm_speedup,
            p.ratio,
        )
        for p in points
    ]
    return format_table(
        ["machine", "diameter", "CWN speedup", "GM speedup", "CWN/GM"],
        rows,
        title="Scaling study: CWN's edge vs machine size (the diameter conjecture)",
    )
