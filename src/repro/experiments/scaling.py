"""Machine-size scaling study — the paper's diameter conjecture.

Section 4: "The superior performance of CWN on the grids leads us to
conjecture that it performs better than the GM on large systems, which
of course tend to have larger diameters."  This study fixes a workload
and sweeps machine size within each family, recording the CWN/GM ratio
against PE count and network diameter so the conjecture can be checked
directly rather than read off Table 2's corners.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..topology import paper_dlm, paper_grid
from ..workload import Fibonacci, Program
from . import scale
from .runner import simulate
from .tables import format_table

__all__ = ["ScalingPoint", "render_scaling", "run_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One machine size's paired measurement."""

    family: str
    n_pes: int
    diameter: int
    cwn_speedup: float
    gm_speedup: float

    @property
    def ratio(self) -> float:
        return self.cwn_speedup / self.gm_speedup


def run_scaling(
    program: Program | None = None,
    families: tuple[str, ...] = ("grid", "dlm"),
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> list[ScalingPoint]:
    """Sweep machine sizes with a fixed workload (fib(15) by default)."""
    if program is None:
        program = Fibonacci(15 if not scale.full_scale() else 18)
    points: list[ScalingPoint] = []
    for family in families:
        make = paper_grid if family == "grid" else paper_dlm
        for n_pes in scale.pe_counts(full):
            topo = make(n_pes)
            cwn = simulate(program, topo, paper_cwn(family), config=config, seed=seed)
            gm = simulate(program, topo, paper_gm(family), config=config, seed=seed)
            points.append(
                ScalingPoint(family, n_pes, topo.diameter, cwn.speedup, gm.speedup)
            )
    return points


def render_scaling(points: list[ScalingPoint]) -> str:
    """Ratio against machine size and diameter, per family."""
    rows = [
        (
            f"{p.family}:{p.n_pes}",
            p.diameter,
            p.cwn_speedup,
            p.gm_speedup,
            p.ratio,
        )
        for p in points
    ]
    return format_table(
        ["machine", "diameter", "CWN speedup", "GM speedup", "CWN/GM"],
        rows,
        title="Scaling study: CWN's edge vs machine size (the diameter conjecture)",
    )
