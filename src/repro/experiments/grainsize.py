"""Grain-size study — the introduction's framing, measured.

The paper's introduction motivates *medium* grain: "A potential
alternative is to divide the computation into a large number of medium
granules.  (Too small a grainsize would lead to undue overhead.)"  This
study makes that trade-off measurable: with communication costs fixed,
sweep the per-goal work (the grain) and record each strategy's speedup.

At tiny grains the fixed per-goal costs (placement messages, responses,
routing decisions) dominate and utilization collapses; at huge grains
everything amortizes but the *number* of goals per PE shrinks toward
the granularity floor where load balancing has nothing left to balance.
The medium-grain sweet spot in between is exactly what the paper
asserts exists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from ..core import paper_cwn, paper_gm
from ..oracle.config import CostModel, SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology, paper_grid
from ..workload import Fibonacci, Program
from .plan import ExperimentPlan, execute, paired, planned_run
from .tables import format_table

__all__ = ["GrainPoint", "grainsize_plan", "render_grainsize", "run_grainsize"]

#: work multipliers swept: leaf/split/combine costs scale together
DEFAULT_GRAINS: tuple[float, ...] = (0.05, 0.2, 1.0, 5.0, 20.0)


@dataclass(frozen=True)
class GrainPoint:
    """One grain setting's paired measurement."""

    grain: float
    comm_per_goal: float  # fixed message cost relative to one goal's work
    cwn_speedup: float
    gm_speedup: float

    @property
    def ratio(self) -> float:
        return self.cwn_speedup / self.gm_speedup


def scaled_costs(base: CostModel, grain: float) -> CostModel:
    """Scale all *work* costs by ``grain``, leaving message costs fixed."""
    if grain <= 0:
        raise ValueError("grain must be positive")
    return replace(
        base,
        leaf_work=base.leaf_work * grain,
        split_work=base.split_work * grain,
        combine_work=base.combine_work * grain,
    )


def grainsize_plan(
    program: Program | None = None,
    topology: Topology | None = None,
    grains: tuple[float, ...] = DEFAULT_GRAINS,
    seed: int = 1,
) -> ExperimentPlan:
    """The grain sweep as a plan: per grain, a CWN/GM pair at scaled costs."""
    program = program or Fibonacci(13)
    topology = topology or paper_grid(64)
    family = topology.family
    base = CostModel()
    runs = []
    meta: list[Any] = []
    for grain in grains:
        costs = scaled_costs(base, grain)
        cfg = SimConfig(costs=costs, seed=seed)
        comm_per_goal = costs.transfer_time(4) / (costs.leaf_work or 1.0)
        for strategy in (paper_cwn(family), paper_gm(family)):
            runs.append(planned_run(program, topology, strategy, config=cfg))
            meta.append((grain, comm_per_goal))

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> list[GrainPoint]:
        return [
            GrainPoint(grain, comm_per_goal, cwn.speedup, gm.speedup)
            for cwn, gm, (grain, comm_per_goal) in paired(results, labels)
        ]

    return ExperimentPlan("grainsize", tuple(runs), _reduce, tuple(meta))


def run_grainsize(
    program: Program | None = None,
    topology: Topology | None = None,
    grains: tuple[float, ...] = DEFAULT_GRAINS,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[GrainPoint]:
    """Sweep the grain with fixed communication costs (farmable)."""
    return execute(
        grainsize_plan(program, topology, grains, seed), jobs=jobs, cache=cache
    )


def render_grainsize(points: list[GrainPoint]) -> str:
    rows = [
        (p.grain, p.comm_per_goal, p.cwn_speedup, p.gm_speedup, p.ratio)
        for p in points
    ]
    return format_table(
        ["grain (x work)", "msg cost / work", "CWN speedup", "GM speedup", "CWN/GM"],
        rows,
        title="Grain-size study: per-goal work vs fixed communication cost",
    )
