"""Plots 1-10 — average PE utilization vs problem size.

Each of the paper's Plots 1-10 fixes one topology instance (five DLMs,
five grids) and the dc program, and shows average PE utilization (Y, in
percent) against the problem size in total goals generated (X), one
curve per strategy.  The fib counterparts were "very similar, so we omit
them from the plots" — we can generate both.

:func:`curve_plan` builds one plot as a declarative
:class:`~repro.experiments.plan.ExperimentPlan`; :func:`run_curve`
produces one plot's data; :func:`run_all_curves` merges the whole
family into one farmed batch; :func:`render_curve` draws the ASCII
figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology, paper_dlm, paper_grid
from ..workload import DivideConquer, Fibonacci, Program
from . import scale
from .plan import ExperimentPlan, execute, merge_plans, planned_run
from .plots import ascii_plot
from .tables import format_table

__all__ = [
    "UtilizationCurve",
    "curve_plan",
    "render_curve",
    "run_all_curves",
    "run_curve",
]


@dataclass(frozen=True)
class UtilizationCurve:
    """One plot: utilization vs goals for both strategies."""

    topology: str
    workload_kind: str
    #: list of (total_goals, utilization_percent) per strategy
    series: dict[str, list[tuple[int, float]]]


def _programs(kind: str, full: bool | None) -> list[Program]:
    if kind == "dc":
        return [DivideConquer(1, x) for x in scale.dc_sizes(full)]
    if kind == "fib":
        return [Fibonacci(n) for n in scale.fib_sizes(full)]
    raise ValueError(f"workload kind must be 'dc' or 'fib', not {kind!r}")


def curve_plan(
    topology: Topology,
    kind: str = "dc",
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    strategies: tuple[str, ...] = ("cwn", "gm"),
) -> ExperimentPlan:
    """One plot as a plan: problem sizes x strategies on one topology."""
    family = topology.family
    builders = {"cwn": paper_cwn, "gm": paper_gm}
    runs = []
    meta: list[Any] = []
    for program in _programs(kind, full):
        for strat in strategies:
            runs.append(
                planned_run(
                    program, topology, builders[strat](family), config=config, seed=seed
                )
            )
            meta.append(strat)

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> UtilizationCurve:
        series: dict[str, list[tuple[int, float]]] = {s: [] for s in strategies}
        for strat, res in zip(labels, results):
            series[strat].append((res.total_goals, res.utilization_percent))
        return UtilizationCurve(topology.name, kind, series)

    return ExperimentPlan(f"plot:{topology.name}", tuple(runs), _reduce, tuple(meta))


def run_curve(
    topology: Topology,
    kind: str = "dc",
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    strategies: tuple[str, ...] = ("cwn", "gm"),
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> UtilizationCurve:
    """One topology's utilization-vs-goals curve for both strategies."""
    return execute(
        curve_plan(topology, kind, full, config, seed, strategies),
        jobs=jobs,
        cache=cache,
    )


#: The paper's plot inventory: (plot number, family, PE count).
PAPER_PLOTS: tuple[tuple[int, str, int], ...] = (
    (1, "dlm", 400),
    (2, "dlm", 256),
    (3, "dlm", 100),
    (4, "dlm", 64),
    (5, "dlm", 25),
    (6, "grid", 400),
    (7, "grid", 100),
    (8, "grid", 100),  # the paper shows two 10x10 grid plots (8 duplicates 7's setup)
    (9, "grid", 64),
    (10, "grid", 25),
)


def run_all_curves(
    kind: str = "dc",
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[tuple[int, UtilizationCurve]]:
    """Plots 1-10 (deduplicated; plot 8 repeats plot 7's configuration).

    The whole family merges into one plan, so every cell of every plot
    fans out together instead of plot by plot.
    """
    machine_sizes = set(scale.pe_counts(full))
    plot_nos: list[int] = []
    plans: list[ExperimentPlan] = []
    seen: set[tuple[str, int]] = set()
    for plot_no, family, n_pes in PAPER_PLOTS:
        if n_pes not in machine_sizes or (family, n_pes) in seen:
            continue
        seen.add((family, n_pes))
        topo = paper_grid(n_pes) if family == "grid" else paper_dlm(n_pes)
        plot_nos.append(plot_no)
        plans.append(curve_plan(topo, kind, full, config, seed))
    curves = execute(merge_plans("plots", plans), jobs=jobs, cache=cache)
    return list(zip(plot_nos, curves))


def render_curve(curve: UtilizationCurve, plot_no: int | None = None) -> str:
    """ASCII figure plus the exact numbers as a table."""
    tag = f"Plot {plot_no}: " if plot_no is not None else ""
    title = f"{tag}{curve.workload_kind} on {curve.topology} — % PE utilization vs goals"
    fig = ascii_plot(
        {name: pts for name, pts in curve.series.items()},
        title=title,
        x_label="goals",
        y_max=100.0,
    )
    headers = ["goals"] + list(curve.series)
    xs = [x for x, _ in next(iter(curve.series.values()))]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [pts[i][1] for pts in curve.series.values()])
    return fig + "\n" + format_table(headers, rows)
