"""Plots 11-16 — utilization over time within single runs.

"To understand the operation of each method, we plot the utilizations
during short sampling intervals throughout the course of computation."
Plots 11-13: Fibonacci of 18/15/9 on the 100-PE double-lattice-mesh;
Plots 14-16: the same on the 10x10 grid.

These plots carry the paper's key diagnostics:

* CWN's much faster **rise time** — "it spreads work quickly to all the
  PEs at beginning";
* CWN's inability to hold 100% once reached (no redistribution), where
  GM "manages to maintain 100% when it reaches that level";
* CWN's **extended tail** on fib(18) (the load measure ignores future
  commitments);
* GM's slow start and, on the grids, the hoarding "vicious cycle" that
  flattens its curve.

Each study is a two-stage pipeline on the plan spine: a **pilot plan**
(no sampling) sizes each strategy's sampling interval from its
completion time, then a **sampled plan** records the trace — both
stages farm and cache like any other experiment, and
:func:`run_many_timeseries` merges a whole plot family into one batch
per stage.

:func:`rise_time` and :func:`tail_length` quantify the first and third
observations so tests/benches can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import Topology, paper_dlm, paper_grid
from ..workload import Fibonacci
from .plan import ExperimentPlan, execute, merge_plans, planned_run
from .plots import ascii_plot

__all__ = [
    "TimeSeriesStudy",
    "pilot_plan",
    "render_timeseries",
    "rise_time",
    "run_many_timeseries",
    "run_timeseries",
    "sampled_plan",
    "tail_length",
]

#: the strategies every time-series study traces, in plot order
_STRATEGIES = (("cwn", paper_cwn), ("gm", paper_gm))


@dataclass(frozen=True)
class TimeSeriesStudy:
    """One plot: sampled utilization traces for both strategies."""

    topology: str
    workload: str
    #: per strategy: list of (time, utilization_percent)
    series: dict[str, list[tuple[float, float]]]
    completion: dict[str, float]


def pilot_plan(
    fib_n: int,
    topology: Topology,
    config: SimConfig | None = None,
    seed: int = 1,
) -> ExperimentPlan:
    """Stage 1: unsampled runs whose completion times size the intervals.

    Reduces to ``{strategy: completion_time}``.
    """
    base = config or SimConfig()
    family = topology.family
    runs = tuple(
        planned_run(Fibonacci(fib_n), topology, build(family), config=base, seed=seed)
        for _name, build in _STRATEGIES
    )
    meta = tuple(name for name, _build in _STRATEGIES)

    def _reduce(results: Sequence[SimResult], labels: Sequence[Any]) -> dict[str, float]:
        return {name: res.completion_time for name, res in zip(labels, results)}

    return ExperimentPlan("timeseries:pilot", runs, _reduce, meta)


def sampled_plan(
    fib_n: int,
    topology: Topology,
    intervals: dict[str, float],
    config: SimConfig | None = None,
    seed: int = 1,
) -> ExperimentPlan:
    """Stage 2: the real traces, each strategy at its pilot-sized interval."""
    base = config or SimConfig()
    family = topology.family
    runs = tuple(
        planned_run(
            Fibonacci(fib_n),
            topology,
            build(family),
            config=base.replace(sample_interval=intervals[name]),
            seed=seed,
        )
        for name, build in _STRATEGIES
    )
    meta = tuple(name for name, _build in _STRATEGIES)

    def _reduce(results: Sequence[SimResult], labels: Sequence[Any]) -> TimeSeriesStudy:
        series: dict[str, list[tuple[float, float]]] = {}
        completion: dict[str, float] = {}
        label = ""
        for name, res in zip(labels, results):
            series[name] = [(s.time, 100.0 * s.utilization) for s in res.samples]
            completion[name] = res.completion_time
            label = res.workload
        return TimeSeriesStudy(topology.name, label, series, completion)

    return ExperimentPlan("timeseries", runs, _reduce, meta)


def _intervals(pilot: dict[str, float], samples: int) -> dict[str, float]:
    """Interval per strategy: about ``samples`` points over its run."""
    return {name: max(ct / samples, 1.0) for name, ct in pilot.items()}


def run_timeseries(
    fib_n: int,
    topology: Topology,
    config: SimConfig | None = None,
    seed: int = 1,
    samples: int = 60,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> TimeSeriesStudy:
    """Sample both strategies' utilization through a fib(n) run.

    The sampling interval adapts to each run's length so every trace has
    about ``samples`` points (the paper's "short sampling intervals").
    """
    [study] = run_many_timeseries(
        [(fib_n, topology)], config, seed, samples, jobs=jobs, cache=cache
    )
    return study


def run_many_timeseries(
    combos: Sequence[tuple[int, Topology]],
    config: SimConfig | None = None,
    seed: int = 1,
    samples: int = 60,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[TimeSeriesStudy]:
    """Several studies, each stage merged into one farmed batch.

    ``combos`` is a list of (fib size, topology); the returned studies
    are in the same order.
    """
    combos = list(combos)
    pilots = execute(
        merge_plans(
            "timeseries:pilot",
            [pilot_plan(n, topo, config, seed) for n, topo in combos],
        ),
        jobs=jobs,
        cache=cache,
    )
    return execute(
        merge_plans(
            "timeseries",
            [
                sampled_plan(n, topo, _intervals(pilot, samples), config, seed)
                for (n, topo), pilot in zip(combos, pilots)
            ],
        ),
        jobs=jobs,
        cache=cache,
    )


def run_paper_timeseries(
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    sizes: tuple[int, ...] | None = None,
    topologies: Sequence[Topology] | None = None,
) -> list[tuple[int, TimeSeriesStudy]]:
    """Plots 11-16 (fib 18/15/9 on 100-PE DLM, then 10x10 grid).

    At reduced scale fib(18) is replaced by fib(15)'s cheaper cousin
    fib(13) to keep bench runtimes low; pass ``full=True`` (or set
    REPRO_FULL=1) for the paper's exact sizes.  ``sizes`` / ``topologies``
    override the paper's inventory for focused studies and tests.
    """
    from . import scale

    if full is None:
        full = scale.full_scale()
    if sizes is None:
        sizes = (18, 15, 9) if full else (13, 11, 9)
    if topologies is None:
        topologies = (paper_dlm(100), paper_grid(100))
    combos = [(n, topo) for topo in topologies for n in sizes]
    studies = run_many_timeseries(combos, config, seed, jobs=jobs, cache=cache)
    return [(11 + i, study) for i, study in enumerate(studies)]


def render_timeseries(study: TimeSeriesStudy, plot_no: int | None = None) -> str:
    """ASCII reproduction of one utilization-vs-time plot."""
    tag = f"Plot {plot_no}: " if plot_no is not None else ""
    title = f"{tag}{study.workload} on {study.topology} — % PE utilization vs time"
    return ascii_plot(study.series, title=title, x_label="time", y_max=100.0)


# ---------------------------------------------------------------------------
# Quantitative reductions of the paper's qualitative observations
# ---------------------------------------------------------------------------

def rise_time(trace: list[tuple[float, float]], level: float = 50.0) -> float:
    """First time the trace reaches ``level`` percent utilization.

    The paper: "the CWN has much faster 'rise-time' than GM".  Returns
    ``inf`` when the level is never reached (GM's flattened grid runs).
    """
    for t, u in trace:
        if u >= level:
            return t
    return float("inf")


def tail_length(
    trace: list[tuple[float, float]], completion: float, level: float = 20.0
) -> float:
    """Duration of the final low-utilization phase (< ``level`` percent).

    The paper's "extended tail in plot 11": how long the run lingers
    below ``level`` at the end.
    """
    tail_start = completion
    for t, u in reversed(trace):
        if u >= level:
            break
        tail_start = t
    return completion - tail_start
