"""Plots 11-16 — utilization over time within single runs.

"To understand the operation of each method, we plot the utilizations
during short sampling intervals throughout the course of computation."
Plots 11-13: Fibonacci of 18/15/9 on the 100-PE double-lattice-mesh;
Plots 14-16: the same on the 10x10 grid.

These plots carry the paper's key diagnostics:

* CWN's much faster **rise time** — "it spreads work quickly to all the
  PEs at beginning";
* CWN's inability to hold 100% once reached (no redistribution), where
  GM "manages to maintain 100% when it reaches that level";
* CWN's **extended tail** on fib(18) (the load measure ignores future
  commitments);
* GM's slow start and, on the grids, the hoarding "vicious cycle" that
  flattens its curve.

:func:`rise_time` and :func:`tail_length` quantify the first and third
observations so tests/benches can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..topology import Topology, paper_dlm, paper_grid
from ..workload import Fibonacci
from .plots import ascii_plot
from .runner import simulate

__all__ = [
    "TimeSeriesStudy",
    "render_timeseries",
    "rise_time",
    "run_timeseries",
    "tail_length",
]


@dataclass(frozen=True)
class TimeSeriesStudy:
    """One plot: sampled utilization traces for both strategies."""

    topology: str
    workload: str
    #: per strategy: list of (time, utilization_percent)
    series: dict[str, list[tuple[float, float]]]
    completion: dict[str, float]


def run_timeseries(
    fib_n: int,
    topology: Topology,
    config: SimConfig | None = None,
    seed: int = 1,
    samples: int = 60,
) -> TimeSeriesStudy:
    """Sample both strategies' utilization through a fib(n) run.

    The sampling interval adapts to each run's length so every trace has
    about ``samples`` points (the paper's "short sampling intervals").
    """
    base = config or SimConfig()
    family = topology.family
    series: dict[str, list[tuple[float, float]]] = {}
    completion: dict[str, float] = {}
    label = ""
    for name, build in (("cwn", paper_cwn), ("gm", paper_gm)):
        # Pilot run (no sampling) to size the interval, then the real run.
        pilot = simulate(Fibonacci(fib_n), topology, build(family), config=base, seed=seed)
        interval = max(pilot.completion_time / samples, 1.0)
        cfg = base.replace(sample_interval=interval)
        res = simulate(Fibonacci(fib_n), topology, build(family), config=cfg, seed=seed)
        series[name] = [(s.time, 100.0 * s.utilization) for s in res.samples]
        completion[name] = res.completion_time
        label = res.workload
    return TimeSeriesStudy(topology.name, label, series, completion)


def run_paper_timeseries(
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> list[tuple[int, TimeSeriesStudy]]:
    """Plots 11-16 (fib 18/15/9 on 100-PE DLM, then 10x10 grid).

    At reduced scale fib(18) is replaced by fib(15)'s cheaper cousin
    fib(13) to keep bench runtimes low; pass ``full=True`` (or set
    REPRO_FULL=1) for the paper's exact sizes.
    """
    from . import scale

    if full is None:
        full = scale.full_scale()
    sizes = (18, 15, 9) if full else (13, 11, 9)
    studies = []
    plot_no = 11
    for topo in (paper_dlm(100), paper_grid(100)):
        for n in sizes:
            studies.append((plot_no, run_timeseries(n, topo, config, seed)))
            plot_no += 1
    return studies


def render_timeseries(study: TimeSeriesStudy, plot_no: int | None = None) -> str:
    """ASCII reproduction of one utilization-vs-time plot."""
    tag = f"Plot {plot_no}: " if plot_no is not None else ""
    title = f"{tag}{study.workload} on {study.topology} — % PE utilization vs time"
    return ascii_plot(study.series, title=title, x_label="time", y_max=100.0)


# ---------------------------------------------------------------------------
# Quantitative reductions of the paper's qualitative observations
# ---------------------------------------------------------------------------

def rise_time(trace: list[tuple[float, float]], level: float = 50.0) -> float:
    """First time the trace reaches ``level`` percent utilization.

    The paper: "the CWN has much faster 'rise-time' than GM".  Returns
    ``inf`` when the level is never reached (GM's flattened grid runs).
    """
    for t, u in trace:
        if u >= level:
            return t
    return float("inf")


def tail_length(
    trace: list[tuple[float, float]], completion: float, level: float = 20.0
) -> float:
    """Duration of the final low-utilization phase (< ``level`` percent).

    The paper's "extended tail in plot 11": how long the run lingers
    below ``level`` at the end.
    """
    tail_start = completion
    for t, u in reversed(trace):
        if u >= level:
            break
        tail_start = t
    return completion - tail_start
