"""Experiment scaling: paper-size vs CI-size grids.

The paper's full evaluation is 240 simulation runs, the largest of which
(8361 goals on 400 PEs) took "15 minutes to 3 hours" on a VAX-750 and
takes ~1-2 s here.  The full grid still costs several minutes, so the
benches default to a reduced grid — same families, same shapes, smaller
extremes — and honour the environment variable ``REPRO_FULL=1`` for the
complete reproduction.  Every experiment module takes an explicit
``full`` flag too; the env var only sets the default.
"""

from __future__ import annotations

import os

__all__ = [
    "FULL_DC_SIZES",
    "FULL_FIB_SIZES",
    "FULL_PE_COUNTS",
    "REDUCED_DC_SIZES",
    "REDUCED_FIB_SIZES",
    "REDUCED_PE_COUNTS",
    "dc_sizes",
    "default_jobs",
    "fib_sizes",
    "full_scale",
    "pe_counts",
]

FULL_PE_COUNTS: tuple[int, ...] = (25, 64, 100, 256, 400)
REDUCED_PE_COUNTS: tuple[int, ...] = (25, 64, 100)

FULL_FIB_SIZES: tuple[int, ...] = (7, 9, 11, 13, 15, 18)
REDUCED_FIB_SIZES: tuple[int, ...] = (7, 9, 11, 13, 15)

FULL_DC_SIZES: tuple[int, ...] = (21, 55, 144, 377, 987, 4181)
REDUCED_DC_SIZES: tuple[int, ...] = (21, 55, 144, 377, 987)


def full_scale(default: bool = False) -> bool:
    """True when the full paper-scale grids were requested via REPRO_FULL."""
    raw = os.environ.get("REPRO_FULL")
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "no")


def default_jobs(explicit: int | None = None) -> int | None:
    """Worker-process count for the simulation farm.

    An explicit value (a CLI ``--jobs``) wins; otherwise the
    ``REPRO_JOBS`` environment variable sets the default, mirroring how
    ``REPRO_FULL`` sets the default grid scale.  ``None`` means "stay
    serial"; ``0`` means "all cores" (resolved by the farm).
    """
    if explicit is not None:
        return explicit
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be an integer (0 = all cores), got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"REPRO_JOBS must be >= 0 (0 = all cores), got {value}")
    return value


def pe_counts(full: bool | None = None) -> tuple[int, ...]:
    """Machine sizes for the chosen scale."""
    if full is None:
        full = full_scale()
    return FULL_PE_COUNTS if full else REDUCED_PE_COUNTS


def fib_sizes(full: bool | None = None) -> tuple[int, ...]:
    """Fibonacci problem sizes for the chosen scale."""
    if full is None:
        full = full_scale()
    return FULL_FIB_SIZES if full else REDUCED_FIB_SIZES


def dc_sizes(full: bool | None = None) -> tuple[int, ...]:
    """dc problem sizes for the chosen scale."""
    if full is None:
        full = full_scale()
    return FULL_DC_SIZES if full else REDUCED_DC_SIZES
