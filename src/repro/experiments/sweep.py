"""Generic one-factor parameter sweeps with paired-strategy analysis.

The optimization experiments (§3.1), the comm-ratio caveat (§5), and the
diameter conjecture (§4) are all instances of one shape: vary a single
factor, run two strategies at every point, look at how the comparison
moves.  :class:`PairedSweep` is that shape as a reusable object —

* :meth:`PairedSweep.plan` emits the grid as a declarative
  :class:`~repro.experiments.plan.ExperimentPlan`;
* :meth:`PairedSweep.run` executes it (one seed or several);
* :attr:`SweepResult.ratios` gives the A/B metric ratio per point;
* :meth:`SweepResult.crossovers` locates where the winner changes
  (via :mod:`repro.analysis.crossover`);
* :meth:`SweepResult.table` renders the paper-style rows.

The factor is abstract: a callable from the swept value to a
``(strategy_a, strategy_b, config)`` triple, so the same machinery
sweeps strategy parameters (radius, watermarks), cost-model knobs
(comm ratio), or machine properties (size — via the topology factory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..analysis.crossover import Crossover, find_crossovers
from ..core.base import Strategy
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology.base import Topology
from ..workload.base import Program
from .plan import ExperimentPlan, execute, planned_run
from .tables import format_table

__all__ = ["PairedSweep", "SweepPoint", "SweepResult"]

#: factory signature: swept value -> (strategy A, strategy B, config)
PointFactory = Callable[[float], tuple[Strategy, Strategy, SimConfig]]


@dataclass(frozen=True)
class SweepPoint:
    """Both strategies' results at one swept value (seed-averaged)."""

    x: float
    metric_a: float
    metric_b: float

    @property
    def ratio(self) -> float:
        return self.metric_a / self.metric_b


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: factor name, points, and analysis helpers."""

    factor: str
    metric: str
    a_name: str
    b_name: str
    points: tuple[SweepPoint, ...]

    @property
    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def ratios(self) -> list[float]:
        return [p.ratio for p in self.points]

    def crossovers(self) -> list[Crossover]:
        """Where the better strategy changes along the factor."""
        return find_crossovers(
            self.xs,
            [p.metric_a for p in self.points],
            [p.metric_b for p in self.points],
        )

    def table(self) -> str:
        return format_table(
            [self.factor, self.a_name, self.b_name, f"{self.a_name}/{self.b_name}"],
            [
                [f"{p.x:g}", f"{p.metric_a:.2f}", f"{p.metric_b:.2f}", f"{p.ratio:.2f}"]
                for p in self.points
            ],
            title=f"{self.metric} vs {self.factor}",
        )


class PairedSweep:
    """Run two strategies across a one-dimensional factor grid.

    Parameters
    ----------
    program, topology:
        Fixed for the whole sweep (sweep machine size by constructing
        one ``PairedSweep`` per size instead — sizes change the topology
        object, which is deliberately not a swept value here).
    factory:
        Maps the swept value to ``(strategy_a, strategy_b, config)``.
        A fresh pair must be returned per call (strategies are
        single-run objects).
    metric:
        Attribute of :class:`~repro.oracle.stats.SimResult` to compare
        (default ``"speedup"``).
    """

    def __init__(
        self,
        program: Program,
        topology: Topology,
        factory: PointFactory,
        factor: str,
        metric: str = "speedup",
        a_name: str = "A",
        b_name: str = "B",
    ) -> None:
        if not hasattr(SimResult, metric):
            raise ValueError(f"SimResult has no metric {metric!r}")
        self.program = program
        self.topology = topology
        self.factory = factory
        self.factor = factor
        self.metric = metric
        self.a_name = a_name
        self.b_name = b_name

    def plan(
        self,
        values: Sequence[float],
        seeds: Sequence[int] = (1,),
    ) -> ExperimentPlan:
        """The ``2 x |values| x |seeds|`` grid as a plan.

        One factory call per (value, seed): strategies run exactly once,
        so every simulation needs a fresh pair.  The reducer averages
        the metric over seeds per swept value.
        """
        if not values:
            raise ValueError("sweep needs at least one value")
        if not seeds:
            raise ValueError("sweep needs at least one seed")
        runs = []
        meta: list[Any] = []
        for x in values:
            for seed in seeds:
                strat_a, strat_b, config = self.factory(x)
                for strat in (strat_a, strat_b):
                    runs.append(
                        planned_run(
                            self.program, self.topology, strat, config=config, seed=seed
                        )
                    )
                    meta.append((x, seed))

        def _reduce(
            results: Sequence[SimResult], labels: Sequence[Any]
        ) -> SweepResult:
            points = []
            per_value = 2 * len(seeds)
            for i, x in enumerate(values):
                chunk = results[i * per_value : (i + 1) * per_value]
                total_a = sum(float(getattr(res, self.metric)) for res in chunk[0::2])
                total_b = sum(float(getattr(res, self.metric)) for res in chunk[1::2])
                points.append(
                    SweepPoint(float(x), total_a / len(seeds), total_b / len(seeds))
                )
            return SweepResult(
                self.factor, self.metric, self.a_name, self.b_name, tuple(points)
            )

        return ExperimentPlan(f"sweep:{self.factor}", tuple(runs), _reduce, tuple(meta))

    def run(
        self,
        values: Sequence[float],
        seeds: Sequence[int] = (1,),
        jobs: int | None = None,
        cache: ResultCache | None = None,
    ) -> SweepResult:
        """Execute the sweep; metrics are averaged over ``seeds``.

        ``jobs``/``cache`` route the grid through the
        :mod:`repro.parallel` farm with identical results; sweeps whose
        program/topology/strategies cannot be spelled as factory specs
        run in-process.
        """
        return execute(self.plan(values, seeds), jobs=jobs, cache=cache)
