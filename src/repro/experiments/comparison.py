"""Table 2 — "Speedup of CWN over GM".

The paper's central result: for every (program, size, topology family,
machine size) cell, the ratio of the speedup achieved by CWN to that
achieved by GM.  120 paired cells at full scale ("In 118 out of 120
cases, the CWN is seen to be better.  In 110 of those cases, the
difference is significant, i.e. more than 10%.  On grids at times the
CWN leads to thrice as much speed as GM.").

:func:`comparison_plan` builds the grid as a declarative
:class:`~repro.experiments.plan.ExperimentPlan`; :func:`run_comparison`
executes it (optionally farmed/cached) and returns structured cells;
:func:`render_table2` prints them in the paper's layout (workload rows,
machine-size columns, grids block then DLM block);
:func:`summarize_claims` reduces a grid to the paper's three headline
counts so benches and tests can assert the qualitative reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..core import paper_cwn, paper_gm
from ..oracle.config import SimConfig
from ..oracle.stats import SimResult
from ..parallel import ResultCache
from ..topology import paper_dlm, paper_grid
from ..workload import DivideConquer, Fibonacci, Program
from . import scale
from .plan import ExperimentPlan, execute, paired, planned_run
from .tables import format_table

__all__ = [
    "ComparisonCell",
    "comparison_plan",
    "render_table2",
    "run_comparison",
    "summarize_claims",
]


@dataclass(frozen=True)
class ComparisonCell:
    """One paired (CWN, GM) measurement."""

    workload: str
    family: str
    n_pes: int
    cwn: SimResult
    gm: SimResult

    @property
    def ratio(self) -> float:
        """Speedup of CWN over GM (the paper's table entry)."""
        if self.gm.speedup == 0:
            return float("inf")
        return self.cwn.speedup / self.gm.speedup


def _topology(family: str, n_pes: int):
    if family == "grid":
        return paper_grid(n_pes)
    if family == "dlm":
        return paper_dlm(n_pes)
    raise ValueError(f"table 2 families are 'grid' and 'dlm', not {family!r}")


def _workloads(
    kind: str,
    full: bool | None,
    fib_sizes: tuple[int, ...] | None,
    dc_sizes: tuple[int, ...] | None,
) -> list[Program]:
    programs: list[Program] = []
    if kind in ("fib", "both"):
        programs += [Fibonacci(n) for n in (fib_sizes or scale.fib_sizes(full))]
    if kind in ("dc", "both"):
        programs += [DivideConquer(1, x) for x in (dc_sizes or scale.dc_sizes(full))]
    if not programs:
        raise ValueError(f"workload kind must be 'fib', 'dc' or 'both', not {kind!r}")
    return programs


def comparison_plan(
    kind: str = "both",
    families: tuple[str, ...] = ("grid", "dlm"),
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    pe_counts: tuple[int, ...] | None = None,
    fib_sizes: tuple[int, ...] | None = None,
    dc_sizes: tuple[int, ...] | None = None,
) -> ExperimentPlan:
    """The Table 2 grid as a plan: CWN/GM spec pairs plus cell labels.

    Both competitors in a cell see the same workload, topology, cost
    model and seed, so the ratio isolates the strategies.  The explicit
    ``pe_counts`` / ``fib_sizes`` / ``dc_sizes`` overrides exist for
    focused sub-grids (tests, custom studies); they default to the scale
    module's grids.
    """
    config = config or SimConfig()
    grid: list[tuple[str, int, Program]] = [
        (family, n_pes, program)
        for family in families
        for n_pes in pe_counts or scale.pe_counts(full)
        for program in _workloads(kind, full, fib_sizes, dc_sizes)
    ]
    runs = []
    meta: list[Any] = []
    for family, n_pes, program in grid:
        topo = _topology(family, n_pes)
        for strategy in (paper_cwn(family), paper_gm(family)):
            runs.append(planned_run(program, topo, strategy, config=config, seed=seed))
            meta.append((family, n_pes))

    def _reduce(
        results: Sequence[SimResult], labels: Sequence[Any]
    ) -> list[ComparisonCell]:
        return [
            ComparisonCell(cwn_res.workload, family, n_pes, cwn_res, gm_res)
            for cwn_res, gm_res, (family, n_pes) in paired(results, labels)
        ]

    return ExperimentPlan("table2", tuple(runs), _reduce, tuple(meta))


def run_comparison(
    kind: str = "both",
    families: tuple[str, ...] = ("grid", "dlm"),
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    pe_counts: tuple[int, ...] | None = None,
    fib_sizes: tuple[int, ...] | None = None,
    dc_sizes: tuple[int, ...] | None = None,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[ComparisonCell]:
    """Execute :func:`comparison_plan` and return its cells.

    ``jobs`` fans the grid out over worker processes and ``cache`` skips
    previously computed cells; results are identical to serial,
    uncached execution (the farm's determinism guarantee).
    """
    return execute(
        comparison_plan(
            kind=kind,
            families=families,
            full=full,
            config=config,
            seed=seed,
            pe_counts=pe_counts,
            fib_sizes=fib_sizes,
            dc_sizes=dc_sizes,
        ),
        jobs=jobs,
        cache=cache,
    )


def render_table2(cells: list[ComparisonCell]) -> str:
    """The paper's layout: one row per workload, grid block then DLM."""
    families = []
    for c in cells:
        if c.family not in families:
            families.append(c.family)
    sizes = sorted({c.n_pes for c in cells})
    workloads = []
    for c in cells:
        if c.workload not in workloads:
            workloads.append(c.workload)
    lookup = {(c.workload, c.family, c.n_pes): c.ratio for c in cells}
    headers = ["PEs"] + [
        f"{fam}:{n}" for fam in families for n in sizes
    ]
    rows = []
    for wl in workloads:
        row: list[object] = [wl]
        for fam in families:
            for n in sizes:
                ratio = lookup.get((wl, fam, n))
                row.append("-" if ratio is None else ratio)
        rows.append(row)
    return format_table(headers, rows, title="Speedup of CWN over GM (Table 2)")


@dataclass(frozen=True)
class ClaimSummary:
    """The paper's headline counts over a comparison grid."""

    total: int
    cwn_wins: int
    significant: int  # CWN better by more than 10%
    max_ratio: float
    min_ratio: float

    def __str__(self) -> str:
        return (
            f"CWN wins {self.cwn_wins}/{self.total} cells "
            f"({self.significant} by >10%); ratio range "
            f"[{self.min_ratio:.2f}, {self.max_ratio:.2f}]"
        )


def summarize_claims(cells: list[ComparisonCell]) -> ClaimSummary:
    """Reduce a grid to the quantities quoted in the paper's section 4."""
    ratios = [c.ratio for c in cells]
    return ClaimSummary(
        total=len(cells),
        cwn_wins=sum(r > 1.0 for r in ratios),
        significant=sum(r > 1.1 for r in ratios),
        max_ratio=max(ratios),
        min_ratio=min(ratios),
    )
