"""Single-run driver: one (workload, topology, strategy) simulation.

This is the narrow waist of the experiment harness and the library's
main convenience entry point.  Everything accepts either constructed
objects or the compact spec strings of the respective ``make`` helpers::

    simulate("fib:15", "grid:10x10", "cwn")
    simulate(Fibonacci(15), Grid(10, 10), CWN(radius=9, horizon=2))
"""

from __future__ import annotations

from typing import Sequence

from ..core import Strategy, make_strategy
from ..oracle.config import SimConfig
from ..oracle.machine import Machine
from ..oracle.stats import SimResult
from ..topology import Topology
from ..topology import make as make_topology
from ..workload import Program
from ..workload import make as make_workload

__all__ = ["build_machine", "simulate"]


def build_machine(
    workload: Program | str,
    topology: Topology | str,
    strategy: Strategy | str,
    config: SimConfig | None = None,
    start_pe: int = 0,
    queries: int = 1,
    arrival_spacing: float = 0.0,
    arrival_pes: "Sequence[int] | None" = None,
    arrival_times: "Sequence[float] | None" = None,
) -> Machine:
    """Construct (but do not run) a fully wired machine.

    Spec strings are resolved here; a strategy given as a bare name
    (``"cwn"``, ``"gm"``) picks up the paper's Table 1 parameters for the
    topology's family.  ``queries`` > 1 (with the arrival knobs) builds
    an open-system machine — see :class:`~repro.oracle.machine.Machine`.
    """
    if isinstance(workload, str):
        workload = make_workload(workload)
    if isinstance(topology, str):
        topology = make_topology(topology)
    if isinstance(strategy, str):
        strategy = make_strategy(strategy, family=topology.family)
    return Machine(
        topology,
        workload,
        strategy,
        config,
        start_pe,
        queries=queries,
        arrival_spacing=arrival_spacing,
        arrival_pes=None if arrival_pes is None else list(arrival_pes),
        arrival_times=None if arrival_times is None else list(arrival_times),
    )


def simulate(
    workload: Program | str,
    topology: Topology | str,
    strategy: Strategy | str,
    config: SimConfig | None = None,
    start_pe: int = 0,
    seed: int | None = None,
    queries: int = 1,
    arrival_spacing: float = 0.0,
    arrival_pes: "Sequence[int] | None" = None,
    arrival_times: "Sequence[float] | None" = None,
) -> SimResult:
    """Run one simulation to completion and return its :class:`SimResult`.

    ``seed`` overrides ``config.seed`` as a convenience for replication
    sweeps.  The ``queries`` / ``arrival_*`` knobs expose the machine's
    open-system mode through the same narrow waist, so query-stream runs
    are ordinary specs to the plan/farm pipeline.
    """
    if seed is not None:
        config = (config or SimConfig()).replace(seed=seed)
    machine = build_machine(
        workload,
        topology,
        strategy,
        config,
        start_pe,
        queries=queries,
        arrival_spacing=arrival_spacing,
        arrival_pes=arrival_pes,
        arrival_times=arrival_times,
    )
    return machine.run()
