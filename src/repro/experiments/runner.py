"""Single-run driver: one (workload, topology, strategy) simulation.

This is the historical convenience entry point; since the
:class:`~repro.scenario.Scenario` redesign both helpers are thin shims
that bundle their arguments into a scenario and call
:meth:`~repro.scenario.Scenario.build` / :meth:`~repro.scenario.Scenario.run`
— one construction path for the whole library.  Everything accepts
either constructed objects or the registries' compact spec strings::

    simulate("fib:15", "grid:10x10", "cwn")
    simulate(Fibonacci(15), Grid(10, 10), CWN(radius=9, horizon=2))
    Scenario.from_spec("fib:15 @ grid:10x10 / cwn").run()   # equivalent
"""

from __future__ import annotations

from typing import Sequence

from ..core import Strategy
from ..oracle.config import SimConfig
from ..oracle.machine import Machine
from ..oracle.stats import SimResult
from ..scenario import Scenario
from ..topology import Topology
from ..workload import Program

__all__ = ["build_machine", "simulate"]


def build_machine(
    workload: Program | str,
    topology: Topology | str,
    strategy: Strategy | str,
    config: SimConfig | None = None,
    start_pe: int = 0,
    queries: int = 1,
    arrival_spacing: float = 0.0,
    arrival_pes: "Sequence[int] | None" = None,
    arrival_times: "Sequence[float] | None" = None,
) -> Machine:
    """Construct (but do not run) a fully wired machine.

    Spec strings are resolved through the registries; a strategy given
    as a bare name (``"cwn"``, ``"gm"``) picks up the paper's Table 1
    parameters for the topology's family.  ``queries`` > 1 (with the
    arrival knobs) builds an open-system machine — see
    :class:`~repro.oracle.machine.Machine`.
    """
    return Scenario.of(
        workload,
        topology,
        strategy,
        config=config,
        start_pe=start_pe,
        queries=queries,
        arrival_spacing=arrival_spacing,
        arrival_pes=arrival_pes,
        arrival_times=arrival_times,
    ).build()


def simulate(
    workload: Program | str,
    topology: Topology | str,
    strategy: Strategy | str,
    config: SimConfig | None = None,
    start_pe: int = 0,
    seed: int | None = None,
    queries: int = 1,
    arrival_spacing: float = 0.0,
    arrival_pes: "Sequence[int] | None" = None,
    arrival_times: "Sequence[float] | None" = None,
) -> SimResult:
    """Run one simulation to completion and return its :class:`SimResult`.

    ``seed`` overrides ``config.seed`` as a convenience for replication
    sweeps.  The ``queries`` / ``arrival_*`` knobs expose the machine's
    open-system mode through the same narrow waist, so query-stream runs
    are ordinary specs to the plan/farm pipeline.
    """
    return Scenario.of(
        workload,
        topology,
        strategy,
        config=config,
        seed=seed,
        start_pe=start_pe,
        queries=queries,
        arrival_spacing=arrival_spacing,
        arrival_pes=arrival_pes,
        arrival_times=arrival_times,
    ).run()
