"""Appendix I — the hypercube experiments.

The paper's appendix repeats the Fibonacci comparison "for the
Hypercubes": utilization-vs-goals curves for hypercubes of several
dimensions (up to 7, i.e. 128 PEs) and utilization-vs-time traces on the
dimension-7 cube for three Fibonacci sizes.  The OCR of the appendix is
rough, but the experiment family is unambiguous and we regenerate it
whole: one curve per dimension, one time-series study per size.
"""

from __future__ import annotations

from ..oracle.config import SimConfig
from ..topology import Hypercube
from . import scale
from .timeseries import TimeSeriesStudy, run_timeseries
from .utilization_curves import UtilizationCurve, run_curve

__all__ = ["run_hypercube_curves", "run_hypercube_timeseries"]

#: Hypercube dimensions in the appendix plots (2**d PEs: 32..128).
FULL_DIMS: tuple[int, ...] = (5, 6, 7)
REDUCED_DIMS: tuple[int, ...] = (4, 5, 6)


def run_hypercube_curves(
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> list[tuple[int, UtilizationCurve]]:
    """Fibonacci utilization-vs-goals on each appendix hypercube."""
    if full is None:
        full = scale.full_scale()
    dims = FULL_DIMS if full else REDUCED_DIMS
    return [
        (dim, run_curve(Hypercube(dim), kind="fib", full=full, config=config, seed=seed))
        for dim in dims
    ]


def run_hypercube_timeseries(
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> list[tuple[int, TimeSeriesStudy]]:
    """Utilization-vs-time on the largest appendix cube, three fib sizes."""
    if full is None:
        full = scale.full_scale()
    dim = 7 if full else 6
    sizes = (18, 15, 9) if full else (13, 11, 9)
    topo = Hypercube(dim)
    return [(n, run_timeseries(n, topo, config, seed)) for n in sizes]
