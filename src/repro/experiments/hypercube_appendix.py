"""Appendix I — the hypercube experiments.

The paper's appendix repeats the Fibonacci comparison "for the
Hypercubes": utilization-vs-goals curves for hypercubes of several
dimensions (up to 7, i.e. 128 PEs) and utilization-vs-time traces on the
dimension-7 cube for three Fibonacci sizes.  The OCR of the appendix is
rough, but the experiment family is unambiguous and we regenerate it
whole: one curve per dimension, one time-series study per size — each
family merged into one farmed batch on the plan spine.
"""

from __future__ import annotations

from typing import Sequence

from ..oracle.config import SimConfig
from ..parallel import ResultCache
from ..topology import Hypercube
from . import scale
from .plan import execute, merge_plans
from .timeseries import TimeSeriesStudy, run_many_timeseries
from .utilization_curves import UtilizationCurve, curve_plan

__all__ = ["run_hypercube_curves", "run_hypercube_timeseries"]

#: Hypercube dimensions in the appendix plots (2**d PEs: 32..128).
FULL_DIMS: tuple[int, ...] = (5, 6, 7)
REDUCED_DIMS: tuple[int, ...] = (4, 5, 6)


def run_hypercube_curves(
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    dims: Sequence[int] | None = None,
) -> list[tuple[int, UtilizationCurve]]:
    """Fibonacci utilization-vs-goals on each appendix hypercube."""
    if full is None:
        full = scale.full_scale()
    if dims is None:
        dims = FULL_DIMS if full else REDUCED_DIMS
    dims = list(dims)
    curves = execute(
        merge_plans(
            "hypercube:curves",
            [
                curve_plan(Hypercube(dim), kind="fib", full=full, config=config, seed=seed)
                for dim in dims
            ],
        ),
        jobs=jobs,
        cache=cache,
    )
    return list(zip(dims, curves))


def run_hypercube_timeseries(
    full: bool | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    dim: int | None = None,
    sizes: tuple[int, ...] | None = None,
) -> list[tuple[int, TimeSeriesStudy]]:
    """Utilization-vs-time on the largest appendix cube, three fib sizes."""
    if full is None:
        full = scale.full_scale()
    if dim is None:
        dim = 7 if full else 6
    if sizes is None:
        sizes = (18, 15, 9) if full else (13, 11, 9)
    topo = Hypercube(dim)
    studies = run_many_timeseries(
        [(n, topo) for n in sizes], config, seed, jobs=jobs, cache=cache
    )
    return list(zip(sizes, studies))
