"""The linter's currency: one :class:`Finding` per violation.

A finding pins a rule violation to a file and line, carries the rule's
one-line explanation of *this* occurrence, and a fix hint.  Findings
order by location so reports are stable across runs and platforms —
the self-lint test and the CI gate diff them textually.

Grandfathered findings live in a committed **baseline** file
(:class:`Baseline`).  Baseline entries match on ``(rule, path, anchor)``
where the anchor is the stripped source text of the offending line —
*not* the line number, so unrelated edits above a grandfathered site do
not invalidate the baseline.  Every entry must carry a non-empty
``reason``: the baseline is a list of justified debts, not a mute
button.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["BASELINE_SCHEMA", "Baseline", "BaselineEntry", "Finding"]

#: Version tag of the baseline file format.
BASELINE_SCHEMA = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    #: optional multi-line propagation trace (``repro lint --explain``)
    explain: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The one-line text-format rendering."""
        text = f"{self.location()}: [{self.rule}] {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "explain": self.explain,
        }


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: rule + file + source-line anchor."""

    rule: str
    path: str
    #: stripped source text of the offending line (line numbers drift;
    #: code text identifies the site)
    anchor: str
    #: one-line justification — required, the whole point of a baseline
    reason: str

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "anchor": self.anchor,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: tuple[BaselineEntry, ...] = ()
    #: entries that matched at least one finding in the last filter pass
    used: set[BaselineEntry] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; malformed files raise :class:`ValueError`."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed baseline {path}: {exc}") from exc
        if not isinstance(payload, Mapping) or payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"baseline {path} has unknown schema "
                f"(expected {{'schema': {BASELINE_SCHEMA}, 'entries': [...]}})"
            )
        entries = []
        for raw in payload.get("entries", ()):
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                anchor=str(raw["anchor"]),
                reason=str(raw.get("reason", "")).strip(),
            )
            if not entry.reason:
                raise ValueError(
                    f"baseline {path}: entry for {entry.rule} at {entry.path} "
                    f"has no reason — every grandfathered finding needs a "
                    f"one-line justification"
                )
            entries.append(entry)
        return cls(entries=tuple(entries))

    def save(self, path: str | Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "entries": [e.to_dict() for e in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], anchors: Mapping[tuple[str, int], str]
    ) -> "Baseline":
        """A baseline skeleton covering ``findings`` (reasons left TODO)."""
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for f in sorted(findings):
            anchor = anchors.get((f.path, f.line), "")
            key = (f.rule, f.path, anchor)
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                BaselineEntry(f.rule, f.path, anchor, "TODO: justify or fix")
            )
        return cls(entries=tuple(entries))

    def suppresses(self, finding: Finding, anchor: str) -> bool:
        """True (and mark used) when an entry matches this finding."""
        for entry in self.entries:
            if (
                entry.rule == finding.rule
                and entry.path == finding.path
                and entry.anchor == anchor
            ):
                self.used.add(entry)
                return True
        return False

    def unused(self) -> tuple[BaselineEntry, ...]:
        """Entries that matched nothing — stale debt to delete."""
        return tuple(e for e in self.entries if e not in self.used)
