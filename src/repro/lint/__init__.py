"""repro.lint — a determinism & invariant linter for this codebase.

The repo's guarantees (bit-identical replays, sharded-PDES equality,
content-addressed caching, zero-cost disabled telemetry) are invariants
*about the code*, not about any single run — the test suites catch a
violation only when some input happens to exercise it.  This package
machine-checks the code shape those guarantees rest on: no raw set
iteration in kernel event paths, no global RNG state, no wall clock in
the kernel, undo-log coverage for every stats counter, guarded
telemetry call sites, complete registry contracts, no fork-hostile
module state, and canonical-form coverage for every scenario field.

Entry points:

* ``repro lint`` — the CLI (see :mod:`repro.cli`);
* :func:`repro.lint.run_lint` — the library API the CLI and the
  self-lint test share;
* :data:`repro.lint.rules.RULES` — the open rule registry (the same
  :class:`~repro.scenario.registry.Registry` machinery as the
  strategy/topology/workload vocabularies; third-party rules plug in
  via the ``repro.lint_rules`` entry-point group).

See ``docs/lint.md`` for the rule catalogue, the waiver syntax and the
baseline workflow.
"""

from .engine import LintResult, collect_files, default_root, run_lint
from .findings import Baseline, BaselineEntry, Finding
from .rules import RULES, Rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "collect_files",
    "default_root",
    "run_lint",
]
