"""Parsed-source context shared by every rule.

The engine parses each file exactly once into a :class:`FileContext`
(source, AST with parent links, waiver comments) and aggregates them
into a :class:`ProjectIndex` — the cross-file view the contract rules
(undo-coverage, registry-contract, cache-key-drift) need: every class
definition in the tree with its base names and class-level attributes,
plus lookup of anchor modules by path suffix.

Paths are normalized to be *package-relative*: the reported path starts
at the last ``repro`` directory component (``repro/oracle/machine.py``),
so findings and baseline entries are stable whether the linter runs
over ``src/repro`` in the repo, an installed package, or a test fixture
tree that mimics the layout.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["ClassInfo", "FileContext", "ProjectIndex", "parents", "rel_path"]

#: ``# lint: ok`` or ``# lint: ok[rule-a,rule-b] — reason`` waives the
#: findings of the named rules (or all rules) on that source line.
_WAIVER_RE = re.compile(r"#\s*lint:\s*ok(?:\[([A-Za-z0-9_,\- ]+)\])?")


def rel_path(path: Path) -> str:
    """Package-relative POSIX path (from the last ``repro`` component)."""
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def parents(tree: ast.AST) -> None:
    """Annotate every node with ``._lint_parent`` (None on the root)."""
    tree._lint_parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """The parent chain of ``node``, innermost first."""
    cur = getattr(node, "_lint_parent", None)
    while cur is not None:
        yield cur
        cur = getattr(cur, "_lint_parent", None)


@dataclass
class FileContext:
    """One parsed source file."""

    path: Path
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: line -> rule ids waived there (``{"*"}`` = all rules)
    waivers: dict[int, set[str]]

    @classmethod
    def parse(cls, path: Path) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        parents(tree)
        lines = source.splitlines()
        waivers: dict[int, set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            m = _WAIVER_RE.search(text)
            if m is None:
                continue
            names = m.group(1)
            waived = (
                {"*"}
                if names is None
                else {n.strip() for n in names.split(",") if n.strip()}
            )
            waivers[lineno] = waived
        return cls(path, rel_path(path), source, lines, tree, waivers)

    def line_text(self, lineno: int) -> str:
        """Stripped source text of 1-based ``lineno`` (baseline anchor)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def waived(self, lineno: int, rule: str) -> bool:
        """True when a waiver on this line (or the one above) covers ``rule``.

        The line-above form supports statements too long to carry a
        trailing comment.
        """
        for at in (lineno, lineno - 1):
            names = self.waivers.get(at)
            if names and ("*" in names or rule in names):
                return True
        return False


@dataclass
class ClassInfo:
    """One class definition, as the contract rules see it."""

    name: str
    rel: str
    lineno: int
    #: last segment of each base expression ("Strategy" for base.Strategy)
    bases: tuple[str, ...]
    #: class-level simple assignments: name -> value expression
    attrs: dict[str, ast.expr]
    node: ast.ClassDef

    def attr_constant(self, name: str) -> object:
        """The literal value of class attribute ``name`` (or None)."""
        value = self.attrs.get(name)
        if isinstance(value, ast.Constant):
            return value.value
        return None


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@dataclass
class ProjectIndex:
    """Every parsed file plus a cross-file class table."""

    files: dict[str, FileContext] = field(default_factory=dict)
    #: class name -> definitions (a name may repeat across modules)
    classes: dict[str, list[ClassInfo]] = field(default_factory=dict)

    def add(self, ctx: FileContext) -> None:
        self.files[ctx.rel] = ctx
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: dict[str, ast.expr] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name):
                        attrs[target.id] = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    if isinstance(stmt.target, ast.Name):
                        attrs[stmt.target.id] = stmt.value
            bases = tuple(
                b for b in (_base_name(e) for e in node.bases) if b is not None
            )
            info = ClassInfo(node.name, ctx.rel, node.lineno, bases, attrs, node)
            self.classes.setdefault(node.name, []).append(info)

    def find_file(self, suffix: str) -> FileContext | None:
        """The file whose package-relative path ends with ``suffix``."""
        for rel, ctx in self.files.items():
            if rel.endswith(suffix):
                return ctx
        return None

    def is_subclass(self, cls: str, root: str, _seen: frozenset = frozenset()) -> bool:
        """Name-based transitive subclass test (``cls`` may equal ``root``)."""
        if cls == root:
            return True
        if cls in _seen:
            return False
        for info in self.classes.get(cls, ()):
            for base in info.bases:
                if self.is_subclass(base, root, _seen | {cls}):
                    return True
        return False

    def mro_attr(self, cls: str, attr: str) -> ast.expr | None:
        """``attr``'s defining expression, searching base classes by name."""
        queue = [cls]
        seen: set[str] = set()
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for info in self.classes.get(name, ()):
                if attr in info.attrs:
                    return info.attrs[attr]
                queue.extend(info.bases)
        return None

    def topology_families(self) -> set[str]:
        """Every concrete ``family`` string defined on a Topology subclass."""
        out: set[str] = set()
        for infos in self.classes.values():
            for info in infos:
                if not self.is_subclass(info.name, "Topology"):
                    continue
                value = info.attr_constant("family")
                if isinstance(value, str) and value != "abstract":
                    out.add(value)
        return out
