"""fork-unsafe-state — no mutated module-level containers in worker code.

The farm (:mod:`repro.parallel`) forks worker processes; every module
already imported at fork time is shared copy-on-write.  A module-level
dict/list/set that code later mutates is a triple hazard: the mutation
dirties COW pages in every worker (memory blow-up), state written
before the fork leaks into all workers (cross-run contamination), and
state written after differs per worker (results depend on which worker
ran the scenario).  Constant module-level tables are fine — this rule
only fires when the module *also* mutates the container in place.

Deliberate process-global caches (read-mostly, deterministic contents)
belong in the committed baseline with a one-line justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import in_scope

_SCOPE = (
    "repro/oracle/",
    "repro/core/",
    "repro/pdes/",
    "repro/topology/",
    "repro/workload/",
    "repro/scenario/",
    "repro/parallel/",
    "repro/experiments/",
    # The serve fleet forks workers exactly like the farm does, so the
    # same copy-on-write hazard applies to everything it imports.
    "repro/serve/",
)

#: constructors whose result is a mutable container
_MUTABLE_CTORS = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
}
#: methods that mutate a container in place
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _mutable_kind(value: ast.expr) -> str | None:
    if isinstance(value, ast.Dict):
        return "dict"
    if isinstance(value, ast.List):
        return "list"
    if isinstance(value, ast.Set):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _MUTABLE_CTORS:
            return name
    return None


def _module_globals(tree: ast.Module) -> dict[str, tuple[str, int, int]]:
    """name -> (kind, line, col) for module-level mutable containers."""
    out: dict[str, tuple[str, int, int]] = {}
    for stmt in tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        kind = _mutable_kind(value)
        if kind is not None:
            out[target.id] = (kind, stmt.lineno, stmt.col_offset)
    return out


def _mutated_names(tree: ast.Module, names: set[str]) -> set[str]:
    """Which of ``names`` the module mutates in place somewhere."""
    hit: set[str] = set()

    def base_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Subscript) and isinstance(expr.value, ast.Name):
            return expr.value.id
        return None

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = base_name(target)
                if name in names:
                    hit.add(name)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = base_name(target)
                if name in names:
                    hit.add(name)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in names
            ):
                hit.add(func.value.id)
    return hit


class ForkUnsafeState(Rule):
    id = "fork-unsafe-state"
    hint = (
        "move the state onto an object created per run (after fork), or "
        "baseline it with a justification if it is deliberately "
        "process-global"
    )

    def check_file(self, ctx, index) -> Iterable[Finding]:
        if not in_scope(ctx.rel, _SCOPE):
            return []
        globals_ = _module_globals(ctx.tree)
        if not globals_:
            return []
        mutated = _mutated_names(ctx.tree, set(globals_))
        out: list[Finding] = []
        for name in sorted(mutated):
            kind, line, col = globals_[name]
            out.append(
                self.finding(
                    ctx,
                    line,
                    col,
                    f"module-level {kind} {name!r} is mutated in place — "
                    f"forked farm workers share it copy-on-write",
                )
            )
        return out


@RULES.register(
    "fork-unsafe-state",
    metadata={
        "summary": "no mutated module-level containers in farm-worker "
        "packages — COW sharing makes them a memory and isolation hazard",
    },
)
def _build(rest: str = "") -> ForkUnsafeState:
    return ForkUnsafeState()
