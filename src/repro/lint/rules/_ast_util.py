"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_name",
    "dotted",
    "enclosing_class",
    "enclosing_function",
    "import_aliases",
    "in_scope",
    "resolve_module_dict",
]


def in_scope(rel: str, prefixes: tuple[str, ...]) -> bool:
    """True when package-relative ``rel`` lives under one of ``prefixes``."""
    return rel.startswith(prefixes)


def dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets (``time.perf_counter`` etc.)."""
    return dotted(node.func)


def import_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names bound to ``module`` (``import x as y`` / ``from p import x``).

    ``module`` is matched by exact name or trailing segment, so
    ``from ..obs import telemetry as _telemetry`` binds ``_telemetry``
    for ``module="telemetry"`` and ``import numpy as np`` binds ``np``
    for ``module="numpy"``.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module or alias.name.split(".")[-1] == module:
                    names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == module:
                    names.add(alias.asname or alias.name)
    return names


def enclosing_function(node: ast.AST) -> ast.AST | None:
    """The nearest enclosing FunctionDef/AsyncFunctionDef/Lambda."""
    cur = getattr(node, "_lint_parent", None)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return cur
        cur = getattr(cur, "_lint_parent", None)
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    """The nearest enclosing ClassDef."""
    cur = getattr(node, "_lint_parent", None)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = getattr(cur, "_lint_parent", None)
    return None


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    cur = getattr(node, "_lint_parent", None)
    while cur is not None:
        yield cur
        cur = getattr(cur, "_lint_parent", None)


def resolve_module_dict(tree: ast.Module, name: str) -> ast.Dict | None:
    """The module-level dict literal assigned to ``name`` (or None)."""
    for stmt in tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        else:
            continue
        if isinstance(target, ast.Name) and target.id == name:
            if isinstance(value, ast.Dict):
                return value
    return None
