"""wall-clock-in-kernel — simulated time only in determinism-critical code.

Simulation behavior must be a pure function of the scenario: the event
calendar runs on ``engine.now``, never on the host's clock.  A
``time.time()`` / ``perf_counter()`` that leaks into an event path,
cache key, or iteration bound makes runs irreproducible in the way the
golden suites cannot catch (it still *completes*, just differently).

The observability layers (``repro/obs``, ``benchmarks``, the CLI) are
outside this rule's scope — measuring wall time is their job.  Inside
the kernel packages, legitimate wall-clock reads (telemetry throughput
metrics that never feed simulation state) carry an inline waiver::

    wall = time.perf_counter()  # lint: ok[wall-clock-in-kernel] telemetry only
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import call_name, import_aliases, in_scope

_SCOPE = (
    "repro/oracle/",
    "repro/core/",
    "repro/pdes/",
    "repro/topology/",
    "repro/workload/",
    "repro/scenario/",
    "repro/parallel/",
)

#: wall-clock reading functions on the ``time`` module
_TIME_FNS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FNS = {"now", "utcnow", "today"}


class WallClockInKernel(Rule):
    id = "wall-clock-in-kernel"
    hint = (
        "use the simulated clock (engine.now); if this read only feeds "
        "telemetry, waive it inline with `# lint: ok[wall-clock-in-kernel] ...`"
    )

    def check_file(self, ctx, index) -> Iterable[Finding]:
        if not in_scope(ctx.rel, _SCOPE):
            return []
        out: list[Finding] = []
        time_names = import_aliases(ctx.tree, "time")
        from_time: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FNS:
                        from_time.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            head, _, tail = name.partition(".")
            flagged = (
                (head in time_names and tail in _TIME_FNS)
                or (not tail and head in from_time)
                or (tail.split(".")[-1] in _DATETIME_FNS and "datetime" in name)
            )
            if flagged:
                out.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"{name}() reads the host wall clock inside a "
                        f"determinism-critical package",
                    )
                )
        return out


@RULES.register(
    "wall-clock-in-kernel",
    metadata={
        "summary": "no time.time()/perf_counter() in kernel packages — "
        "wall clock is for obs/benchmarks; waive telemetry-only reads inline",
    },
)
def _build(rest: str = "") -> WallClockInKernel:
    return WallClockInKernel()
