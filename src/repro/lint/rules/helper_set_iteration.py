"""helper-set-iteration — sets escaping through helpers stay caught.

``unordered-iteration`` infers set-typedness *locally*: a set literal,
a ``set()`` call, a union of known sets.  Its documented false negative
(see the rule's docstring history): a helper that *returns* a set —

    def frontier(self):
        return {c.dst for c in self.channels}
    ...
    for pe in self.frontier():   # hash order, invisible locally

iterates in hash order without a local construction to anchor on.
This rule closes the gap with the flow project's return-type
summaries: a whole-project fixpoint marks every kernel function whose
return value may be a set (directly, or by returning another
set-returning function's result), then flags kernel-scope loops,
comprehensions, and order-sensitive reducers that consume such a call
raw.  Sites the local rule already flags are skipped — one finding per
defect, from whichever rule sees it first.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import in_scope
from .iteration import _ORDER_SENSITIVE_CALLS, _SetTypes

_SCOPE = ("repro/oracle/", "repro/core/", "repro/pdes/", "repro/topology/")


def _owners(tree: ast.Module) -> Iterator[tuple[Optional[str], ast.AST]]:
    """(owning class, scope) for the module and every top-level def."""
    yield None, tree
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield stmt.name, sub
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield None, sub


class HelperSetIteration(Rule):
    id = "helper-set-iteration"
    hint = "wrap the helper call in sorted(...) at the consuming site"

    def check_file(self, ctx, index) -> Iterable[Finding]:
        if not in_scope(ctx.rel, _SCOPE):
            return []
        from ..flow.taint import set_returning_call

        out: list[Finding] = []
        seen: set[tuple[int, int]] = set()

        def helper_ref(owner: Optional[str], node: ast.expr, names: dict) -> Optional[str]:
            """Name of the set-returning helper behind ``node`` (or None)."""
            if isinstance(node, ast.Call):
                ref = set_returning_call(index, ctx, owner, node)
                return None if ref is None else ref[2]
            if isinstance(node, ast.Name):
                return names.get(node.id)
            return None

        def flag(node: ast.expr, what: str) -> None:
            key = (node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                out.append(self.finding(ctx, node.lineno, node.col_offset, what))

        for owner, scope in _owners(ctx.tree):
            types = _SetTypes(scope)  # skip sites the local rule owns
            # name bound to a set-returning helper's result -> helper name
            names: dict[str, str] = {}
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    ref = set_returning_call(index, ctx, owner, node.value)
                    if ref is not None:
                        names[node.targets[0].id] = ref[2]
            for node in ast.walk(scope):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
                    continue
                if isinstance(node, ast.For):
                    ref = helper_ref(owner, node.iter, names)
                    if ref is not None and not types.is_set(node.iter):
                        flag(
                            node.iter,
                            f"for-loop iterates set-returning helper "
                            f"{ref}() in hash order",
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for gen in node.generators:
                        ref = helper_ref(owner, gen.iter, names)
                        if ref is not None and not types.is_set(gen.iter):
                            flag(
                                gen.iter,
                                f"comprehension iterates set-returning "
                                f"helper {ref}() in hash order",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    fname = (
                        func.id
                        if isinstance(func, ast.Name)
                        else func.attr
                        if isinstance(func, ast.Attribute)
                        else None
                    )
                    if fname in _ORDER_SENSITIVE_CALLS and node.args:
                        ref = helper_ref(owner, node.args[0], names)
                        if ref is not None and not types.is_set(node.args[0]):
                            flag(
                                node.args[0],
                                f"{fname}() consumes set-returning helper "
                                f"{ref}() in hash order",
                            )
        return out


@RULES.register(
    "helper-set-iteration",
    metadata={
        "summary": "sets returned from helper functions must not be "
        "iterated raw in kernel paths (closes unordered-iteration's "
        "cross-function blind spot)",
    },
)
def _build(rest: str = "") -> HelperSetIteration:
    return HelperSetIteration()
