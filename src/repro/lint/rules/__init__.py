"""The rule registry and the rule interface.

Rules register through the same string-keyed
:class:`~repro.scenario.registry.Registry` that backs the strategy /
topology / workload vocabularies, so third-party packages can ship
repo-specific rules via the ``repro.lint_rules`` entry-point group
exactly the way they ship strategies — one ``@RULES.register``
decorator::

    from repro.lint.rules import RULES, Rule

    @RULES.register("my-rule", metadata={"summary": "what it guards"})
    def _build(rest: str) -> Rule:
        return MyRule()

A rule sees each parsed file once (:meth:`Rule.check_file`) and the
whole project once (:meth:`Rule.check_project` — for contracts that
span modules, like undo-log coverage).  Both return iterables of
:class:`~repro.lint.findings.Finding`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ...scenario.registry import Registry
from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from ..context import FileContext, ProjectIndex

__all__ = ["RULES", "Rule"]

#: The open rule vocabulary (see the module docstring).
RULES = Registry("lint rule", entry_point_group="repro.lint_rules")


class Rule:
    """Base class; rules override one or both check methods."""

    #: the rule id findings carry (matches the registry name)
    id = "abstract"
    #: one-line fix guidance attached to every finding by default
    hint = ""

    def check_file(
        self, ctx: "FileContext", index: "ProjectIndex"
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, index: "ProjectIndex") -> Iterable[Finding]:
        return ()

    def finding(
        self,
        ctx_or_rel: object,
        line: int,
        col: int,
        message: str,
        hint: str | None = None,
        explain: str = "",
    ) -> Finding:
        """Build a finding for this rule (accepts a context or rel path)."""
        rel = ctx_or_rel if isinstance(ctx_or_rel, str) else ctx_or_rel.rel  # type: ignore[union-attr]
        return Finding(
            path=rel,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
            explain=explain,
        )


# Register the built-in rules (import for side effect, like the
# strategy/topology/workload vocabularies do in their __init__).
from . import cache_key  # noqa: E402,F401
from . import determinism_taint  # noqa: E402,F401
from . import fork_state  # noqa: E402,F401
from . import helper_set_iteration  # noqa: E402,F401
from . import iteration  # noqa: E402,F401
from . import registry_contract  # noqa: E402,F401
from . import rng  # noqa: E402,F401
from . import shardable_contract  # noqa: E402,F401
from . import telemetry_guard  # noqa: E402,F401
from . import undo_coverage  # noqa: E402,F401
from . import wallclock  # noqa: E402,F401
