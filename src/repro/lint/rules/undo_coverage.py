"""undo-coverage — every stats counter the kernel mutates is undo-logged.

The sharded PDES engine (:mod:`repro.pdes.shard`) rolls back optimistic
work by replaying an undo log; ``ShardStats`` intercepts counter writes
via ``__setattr__`` for exactly the names in its ``_LOGGED_COUNTERS``
frozenset.  A counter that exists on
:class:`repro.oracle.stats.StatsCollector` but is *missing* from that
set silently survives rollback with a corrupted value — the sharded
run still completes and still matches event counts, just with wrong
statistics.  That drift is invisible to the golden suites until a
Table-1 column moves.

Three checks, all cross-file:

* every zero-initialized ``StatsCollector`` counter appears in
  ``_LOGGED_COUNTERS``;
* every ``_LOGGED_COUNTERS`` entry still has a matching collector
  field (stale entries mask the first check);
* every ``stats.<name> += ...`` in kernel code targets a registered
  counter (classes that opt out with ``shardable = False`` are exempt
  — they never run sharded).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import enclosing_class, in_scope

_SHARD = "repro/pdes/shard.py"
_STATS = "repro/oracle/stats.py"
_SCOPE = ("repro/oracle/", "repro/core/", "repro/pdes/")


def _string_set(value: ast.expr) -> set[str] | None:
    """String constants inside ``frozenset({...})`` / ``{...}`` literals."""
    if isinstance(value, ast.Call) and value.args:
        return _string_set(value.args[0])
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.add(elt.value)
            else:
                return None
        return out
    return None


def _logged_counters(ctx) -> tuple[set[str], int] | None:
    """``_LOGGED_COUNTERS`` contents + line, wherever it is assigned."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "_LOGGED_COUNTERS":
                names = _string_set(node.value)
                if names is not None:
                    return names, node.lineno
    return None


def _collector_counters(ctx) -> dict[str, int]:
    """``self.<name> = 0`` assignments in ``StatsCollector.__init__``."""
    out: dict[str, int] = {}
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "StatsCollector"):
            continue
        for stmt in node.body:
            if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"):
                continue
            for sub in ast.walk(stmt):
                if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                    continue
                target, value = sub.targets[0], sub.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(value, ast.Constant)
                    and value.value == 0
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                ):
                    out[target.attr] = sub.lineno
    return out


def _stats_target(node: ast.AugAssign) -> str | None:
    """``X`` when the target is ``stats.X`` / ``<expr>.stats.X``."""
    target = node.target
    if not isinstance(target, ast.Attribute):
        return None
    value = target.value
    if isinstance(value, ast.Name) and value.id == "stats":
        return target.attr
    if isinstance(value, ast.Attribute) and value.attr == "stats":
        return target.attr
    return None


class UndoCoverage(Rule):
    id = "undo-coverage"
    hint = (
        "add the counter to _LOGGED_COUNTERS in repro/pdes/shard.py so "
        "ShardStats undo-logs it (and keep both lists in sync)"
    )

    def check_project(self, index) -> Iterable[Finding]:
        shard = index.find_file(_SHARD)
        stats = index.find_file(_STATS)
        if shard is None or stats is None:
            return []
        logged_info = _logged_counters(shard)
        if logged_info is None:
            return [
                self.finding(
                    shard.rel,
                    1,
                    0,
                    "could not locate a literal _LOGGED_COUNTERS set in "
                    "the shard module",
                    hint="keep _LOGGED_COUNTERS a literal frozenset so "
                    "coverage is statically checkable",
                )
            ]
        logged, logged_line = logged_info
        counters = _collector_counters(stats)

        out: list[Finding] = []
        for name in sorted(set(counters) - logged):
            out.append(
                self.finding(
                    stats.rel,
                    counters[name],
                    0,
                    f"StatsCollector counter {name!r} is not in "
                    f"_LOGGED_COUNTERS — sharded rollback corrupts it",
                )
            )
        for name in sorted(logged - set(counters)):
            out.append(
                self.finding(
                    shard.rel,
                    logged_line,
                    0,
                    f"_LOGGED_COUNTERS entry {name!r} has no matching "
                    f"StatsCollector counter (stale entry)",
                    hint="remove the stale entry or restore the counter",
                )
            )

        # Kernel-side increments must target registered counters.
        for ctx in index.files.values():
            if not in_scope(ctx.rel, _SCOPE):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.AugAssign):
                    continue
                name = _stats_target(node)
                if name is None or name in logged:
                    continue
                cls = enclosing_class(node)
                if cls is not None:
                    shardable = index.mro_attr(cls.name, "shardable")
                    if (
                        isinstance(shardable, ast.Constant)
                        and shardable.value is False
                    ):
                        continue
                out.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"stats.{name} is mutated in kernel code but not "
                        f"undo-logged ({name!r} not in _LOGGED_COUNTERS)",
                    )
                )
        return out


@RULES.register(
    "undo-coverage",
    metadata={
        "summary": "every StatsCollector counter kernel code mutates is in "
        "shard.py's _LOGGED_COUNTERS, so sharded rollback restores it",
    },
)
def _build(rest: str = "") -> UndoCoverage:
    return UndoCoverage()
