"""shardable-contract — the declared ``shardable`` flag is *proved*.

Every registered strategy pins ``shardable`` to a bool literal
(``registry-contract`` enforces that much), and the PDES farm trusts
the flag to decide whether one machine may be split across processes.
Until now the flag was a reviewed convention; this rule makes it a
proof obligation.  The flow engine (:mod:`repro.lint.flow`) extracts
per-function effect summaries, propagates them through the call graph
to a fixpoint, and instantiates every hook (and every callback the
hooks schedule) with its acting PE.  Two verdicts become findings:

* **contract breach** — ``shardable = True`` but some hook transitively
  reads or writes another PE's machine state, draws from a shared or
  foreign RNG stream, reads the wall clock, schedules onto a foreign
  site, mutates a ``stats`` counter the shard boundary protocol does
  not log (``shard.py``'s ``_LOGGED_COUNTERS``), or iterates a set in
  hash order.  Running such a strategy sharded silently diverges from
  the sequential oracle.
* **promotion candidate** — ``shardable = False`` but every inferred
  effect is shard-local.  Either flip the flag (the farm is leaving
  parallelism on the table) or waive with the dynamic reason the
  analysis cannot see.

``repro lint --explain`` prints the full propagation path (call chain
from hook to effect) under each finding.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from . import RULES, Rule


class ShardableContract(Rule):
    id = "shardable-contract"
    hint = (
        "make the hook shard-local (or declare shardable = False); "
        "run `repro lint --explain` for the propagation path"
    )

    def check_project(self, index) -> Iterable[Finding]:
        # Imported lazily: the flow engine is only built when the rule
        # actually runs (and its project tables are cached on the index,
        # shared with the other flow rules).
        from ..flow import strategy_reports
        from ..flow.strategies import render_trace

        out: list[Finding] = []
        for name, report in sorted(strategy_reports(index).items()):
            if report.contract_breach:
                shown = "; ".join(
                    v.describe() for v in report.violations[:3]
                )
                if len(report.violations) > 3:
                    shown += f"; … {len(report.violations) - 3} more"
                explain = "\n".join(
                    f"{v.describe()}\n{render_trace(v.trace, '  ')}"
                    for v in report.violations
                )
                out.append(
                    self.finding(
                        report.rel,
                        report.line,
                        0,
                        f"{report.cls} ({name!r}) declares shardable = True "
                        f"but hooks reach non-shard-local state: {shown}",
                        explain=explain,
                    )
                )
            elif report.promotion_candidate:
                out.append(
                    self.finding(
                        report.rel,
                        report.line,
                        0,
                        f"{report.cls} ({name!r}) declares shardable = False "
                        f"but every inferred hook effect is shard-local — "
                        f"promotion candidate",
                        hint=(
                            "flip shardable to True, or waive with the "
                            "dynamic reason the static analysis cannot see"
                        ),
                    )
                )
        return out


@RULES.register(
    "shardable-contract",
    metadata={
        "summary": "a strategy's declared shardable flag must agree with "
        "interprocedural effect inference over its hooks",
    },
)
def _build(rest: str = "") -> ShardableContract:
    return ShardableContract()
