"""cache-key-drift — every scenario field reaches the content hash.

The result cache, the farm dedup, and the sharded-equality harness all
key on ``Scenario.content_hash()`` — SHA-256 over ``canonical_dict()``.
A field added to :class:`~repro.scenario.Scenario` (or to the nested
:class:`Arrivals` / :class:`SimConfig` records) that never reaches the
canonical form is the worst kind of bug: two *different* scenarios
share a hash, and the cache serves one's results for the other.  It is
also silent — every suite passes, until someone varies the new field
and gets stale numbers.

Statically checkable because the serializers are literal-keyed:

* every ``Scenario`` field's name appears as a string constant inside
  ``canonical_dict`` (``seed`` instead must be folded by
  ``canonical()`` — it is hashed via the effective config);
* every ``Arrivals`` field appears in its ``to_dict``;
* every ``SimConfig`` field has a ``_CFG_COERCE`` coercer or explicit
  special-case handling (its name as a string constant) in the config
  module — otherwise scenario specs cannot round-trip the field and
  the spec spelling diverges from the run config.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import resolve_module_dict

_SCENARIO = "repro/scenario/scenario.py"
_ARRIVALS = "repro/scenario/arrivals.py"
_CONFIG = "repro/oracle/config.py"


def _class_fields(node: ast.ClassDef) -> list[tuple[str, int]]:
    """Dataclass fields: annotated names in the class body, in order."""
    out: list[tuple[str, int]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, stmt.lineno))
    return out


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _string_constants(node: ast.AST) -> set[str]:
    return {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }


def _class_in(index, ctx, name: str) -> ast.ClassDef | None:
    for info in index.classes.get(name, ()):
        if info.rel == ctx.rel:
            return info.node
    return None


class CacheKeyDrift(Rule):
    id = "cache-key-drift"
    hint = (
        "emit the field in the canonical serializer (and bump SPEC_SCHEMA "
        "if the canonical form changes)"
    )

    def _check_serialized(
        self, ctx, cls: ast.ClassDef, method_name: str, exempt: set[str]
    ) -> Iterable[Finding]:
        method = _method(cls, method_name)
        if method is None:
            yield self.finding(
                ctx,
                cls.lineno,
                cls.col_offset,
                f"{cls.name} has no {method_name}() — nothing feeds the "
                f"content hash",
            )
            return
        emitted = _string_constants(method)
        for name, lineno in _class_fields(cls):
            if name in exempt or name in emitted:
                continue
            yield self.finding(
                ctx,
                lineno,
                0,
                f"{cls.name} field {name!r} never appears in "
                f"{method_name}() — scenarios differing only in "
                f"{name!r} share a cache key",
            )

    def check_project(self, index) -> Iterable[Finding]:
        out: list[Finding] = []

        scenario_ctx = index.find_file(_SCENARIO)
        if scenario_ctx is not None:
            cls = _class_in(index, scenario_ctx, "Scenario")
            if cls is not None:
                # seed is hashed via canonical(): it must be folded into
                # the effective config there, not emitted directly.
                out.extend(
                    self._check_serialized(
                        scenario_ctx, cls, "canonical_dict", exempt={"seed"}
                    )
                )
                canonical = _method(cls, "canonical")
                folds_seed = canonical is not None and any(
                    isinstance(sub, ast.keyword) and sub.arg == "seed"
                    for sub in ast.walk(canonical)
                )
                if not folds_seed:
                    out.append(
                        self.finding(
                            scenario_ctx,
                            cls.lineno if canonical is None else canonical.lineno,
                            0,
                            "Scenario.canonical() no longer folds the seed "
                            "(no seed= keyword) — seeded scenarios would "
                            "share one cache key",
                            hint="fold seed into the effective config and "
                            "null it in the canonical form",
                        )
                    )

        arrivals_ctx = index.find_file(_ARRIVALS)
        if arrivals_ctx is not None:
            cls = _class_in(index, arrivals_ctx, "Arrivals")
            if cls is not None:
                out.extend(
                    self._check_serialized(arrivals_ctx, cls, "to_dict", exempt=set())
                )

        config_ctx = index.find_file(_CONFIG)
        if config_ctx is not None:
            cls = _class_in(index, config_ctx, "SimConfig")
            coerce = resolve_module_dict(config_ctx.tree, "_CFG_COERCE")
            if cls is not None and coerce is not None:
                known = _string_constants(config_ctx.tree)
                for name, lineno in _class_fields(cls):
                    if name not in known:
                        out.append(
                            self.finding(
                                config_ctx,
                                lineno,
                                0,
                                f"SimConfig field {name!r} has no "
                                f"_CFG_COERCE coercer and no special-case "
                                f"handling — specs cannot round-trip it",
                                hint="add a coercer to _CFG_COERCE (or "
                                "explicit special-casing like costs/"
                                "pe_speeds)",
                            )
                        )
        return out


@RULES.register(
    "cache-key-drift",
    metadata={
        "summary": "every Scenario/Arrivals/SimConfig field reaches the "
        "canonical form, so the content hash distinguishes all scenarios",
    },
)
def _build(rest: str = "") -> CacheKeyDrift:
    return CacheKeyDrift()
