"""unordered-iteration — no set iteration in kernel event paths.

The engine's bit-identity guarantees (the golden kernel suite, the
sharded PDES equality) rest on every loop in the event path visiting
items in a deterministic order: iteration order can feed event keys,
float accumulation, and RNG draw sequences.  ``dict`` preserves
insertion order, but ``set``/``frozenset`` iterate in hash order —
which for strings depends on ``PYTHONHASHSEED`` and for ints on
insertion history.  Inside the kernel packages (``oracle``, ``core``,
``pdes``, ``topology``) a set may be *built* and membership-tested
freely, but never iterated raw: wrap it in ``sorted(...)``.

Order-insensitive consumers (``len``, ``min``, ``max``, ``any``,
``all``, ``sorted``, ``set``, ``frozenset``, ``bool``) are fine;
``sum`` is **not** exempt — float addition is order-sensitive.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import in_scope

_SCOPE = ("repro/oracle/", "repro/core/", "repro/pdes/", "repro/topology/")

#: calls whose result is statically a set
_SET_CALLS = {"set", "frozenset"}
#: set methods returning sets
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
#: order-sensitive reducers that consume an iterable argument whole
_ORDER_SENSITIVE_CALLS = {"sum", "tuple", "list", "join", "fsum", "accumulate"}


class _SetTypes:
    """Track which local names are statically set-typed in one scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: set[str] = set()
        # Two passes so `a = {...}; b = a | other` resolves: first plain
        # set constructions, then expressions over already-known names.
        for _ in range(2):
            for node in ast.walk(scope):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
                    continue
                target = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                else:
                    continue
                if isinstance(target, ast.Name):
                    if self.is_set(value):
                        self.names.add(target.id)
                    elif target.id in self.names:
                        # reassigned to something not set-typed: drop it
                        self.names.discard(target.id)

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CALLS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self.is_set(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every function — one name-tracking scope each."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class UnorderedIteration(Rule):
    id = "unordered-iteration"
    hint = "wrap the set in sorted(...) (or keep a sorted tuple alongside)"

    def check_file(self, ctx, index) -> Iterable[Finding]:
        if not in_scope(ctx.rel, _SCOPE):
            return []
        out: list[Finding] = []
        seen: set[tuple[int, int]] = set()

        def flag(node: ast.expr, what: str) -> None:
            key = (node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                out.append(self.finding(ctx, node.lineno, node.col_offset, what))

        for scope in _scopes(ctx.tree):
            types = _SetTypes(scope)
            for node in ast.walk(scope):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not scope:
                    continue
                if isinstance(node, ast.For) and types.is_set(node.iter):
                    flag(node.iter, "for-loop iterates a set in hash order")
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for gen in node.generators:
                        if types.is_set(gen.iter):
                            flag(gen.iter, "comprehension iterates a set in hash order")
                elif isinstance(node, ast.Call):
                    func = node.func
                    name = (
                        func.id
                        if isinstance(func, ast.Name)
                        else func.attr
                        if isinstance(func, ast.Attribute)
                        else None
                    )
                    if name in _ORDER_SENSITIVE_CALLS and node.args:
                        if types.is_set(node.args[0]):
                            flag(
                                node.args[0],
                                f"{name}() consumes a set in hash order",
                            )
        return out


@RULES.register(
    "unordered-iteration",
    metadata={
        "summary": "no raw set iteration in kernel event paths "
        "(oracle/core/pdes/topology) — hash order can feed event keys",
    },
)
def _build(rest: str = "") -> UnorderedIteration:
    return UnorderedIteration()
