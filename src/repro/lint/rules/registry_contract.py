"""registry-contract — every registration carries its full contract.

The strategy/topology/workload vocabularies (and this linter's own rule
registry) are the repo's plugin surface: ``repro scenarios``, ``repro
explain`` and the docs all render straight from registration metadata,
and the farm shards work based on class attributes.  A registration
that compiles but ships half a contract fails *later*, in whatever
command first reads the missing piece.  This rule moves those failures
to lint time:

* the registered name is a string literal (greppable, stable);
* ``metadata`` is a dict literal with a non-empty ``summary``;
* user-facing vocabularies (STRATEGIES / TOPOLOGIES / WORKLOADS) also
  need an ``example`` spell — ``repro scenarios`` prints it;
* a registered Strategy overrides ``name`` (not ``"abstract"``) and
  pins ``shardable`` to a bool literal — the farm reads it to decide
  process sharding;
* a registered Topology overrides ``family``; a registered Program
  overrides ``name``;
* ``table1`` reference tables only mention topology families that
  actually exist.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import resolve_module_dict

#: registries whose entries are user-facing spells (need an example)
_NEEDS_EXAMPLE = {"STRATEGIES", "TOPOLOGIES", "WORKLOADS"}
#: registry name -> (root class, attr that must be overridden)
_CLS_CONTRACT = {
    "STRATEGIES": ("Strategy", "name"),
    "TOPOLOGIES": ("Topology", "family"),
    "WORKLOADS": ("Program", "name"),
}


def _registration(call: ast.Call) -> tuple[str, str] | None:
    """(registry, name) when this is ``<REGISTRY>.register("name", ...)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "register"):
        return None
    if not (isinstance(func.value, ast.Name) and func.value.id.isupper()):
        return None
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return func.value.id, first.value
    return func.value.id, ""


def _meta_value(metadata: ast.Dict, key: str) -> ast.expr | None:
    for k, v in zip(metadata.keys, metadata.values):
        if isinstance(k, ast.Constant) and k.value == key:
            return v
    return None


class RegistryContract(Rule):
    id = "registry-contract"
    hint = (
        "register with a literal name and metadata={'summary': ..., "
        "'example': ...}; override name/family on the registered class"
    )

    def check_file(self, ctx, index) -> Iterable[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reg = _registration(node)
            if reg is None:
                continue
            registry, name = reg
            line, col = node.lineno, node.col_offset

            if not name:
                out.append(
                    self.finding(
                        ctx,
                        line,
                        col,
                        f"{registry}.register name must be a string literal",
                        hint="use a literal so the vocabulary is greppable",
                    )
                )
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}

            metadata = kwargs.get("metadata")
            if not isinstance(metadata, ast.Dict):
                out.append(
                    self.finding(
                        ctx,
                        line,
                        col,
                        f"{registry}.register({name!r}) has no metadata dict "
                        f"literal — `repro scenarios` renders from it",
                    )
                )
            else:
                summary = _meta_value(metadata, "summary")
                if not (
                    isinstance(summary, ast.Constant)
                    and isinstance(summary.value, str)
                    and summary.value.strip()
                ):
                    out.append(
                        self.finding(
                            ctx,
                            line,
                            col,
                            f"{registry}.register({name!r}) metadata lacks a "
                            f"non-empty 'summary' string",
                        )
                    )
                if registry in _NEEDS_EXAMPLE:
                    example = _meta_value(metadata, "example")
                    if not (
                        isinstance(example, ast.Constant)
                        and isinstance(example.value, str)
                        and example.value.strip()
                    ):
                        out.append(
                            self.finding(
                                ctx,
                                line,
                                col,
                                f"{registry}.register({name!r}) metadata "
                                f"lacks an 'example' spell — user-facing "
                                f"vocabularies must show one",
                            )
                        )
                table1 = _meta_value(metadata, "table1")
                if isinstance(table1, ast.Name):
                    table1 = resolve_module_dict(ctx.tree, table1.id)
                if isinstance(table1, ast.Dict):
                    families = index.topology_families()
                    for key in table1.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and families
                            and key.value not in families
                        ):
                            out.append(
                                self.finding(
                                    ctx,
                                    line,
                                    col,
                                    f"table1 entry {key.value!r} on "
                                    f"{name!r} names no known topology "
                                    f"family",
                                    hint="table1 keys must match a "
                                    "registered Topology.family",
                                )
                            )

            cls = kwargs.get("cls")
            contract = _CLS_CONTRACT.get(registry)
            if isinstance(cls, ast.Name) and contract is not None:
                root, attr = contract
                if index.is_subclass(cls.id, root):
                    value = index.mro_attr(cls.id, attr)
                    if (
                        isinstance(value, ast.Constant)
                        and value.value == "abstract"
                    ) or value is None:
                        out.append(
                            self.finding(
                                ctx,
                                line,
                                col,
                                f"{cls.id} is registered as {name!r} but "
                                f"never overrides {root}.{attr}",
                            )
                        )
                    if registry == "STRATEGIES":
                        shardable = index.mro_attr(cls.id, "shardable")
                        if not (
                            isinstance(shardable, ast.Constant)
                            and isinstance(shardable.value, bool)
                        ):
                            out.append(
                                self.finding(
                                    ctx,
                                    line,
                                    col,
                                    f"{cls.id} ({name!r}) must pin "
                                    f"`shardable` to a bool literal — the "
                                    f"farm reads it to shard processes",
                                )
                            )
        return out


@RULES.register(
    "registry-contract",
    metadata={
        "summary": "registrations carry literal names, summary/example "
        "metadata, overridden name/family, and a bool shardable flag",
    },
)
def _build(rest: str = "") -> RegistryContract:
    return RegistryContract()
