"""global-rng — only seeded RNG instances, never global RNG state.

Every randomized decision in the simulator must replay bit-for-bit from
a :class:`~repro.scenario.Scenario`'s seed: strategies draw from the
machine's per-PE streams (``machine.rngs[pe]``), analysis code builds
``random.Random(seed)``.  The module-level ``random.*`` functions and
``numpy.random``'s global state are process-wide and invisible to the
content hash — a single ``random.shuffle`` in a kernel path silently
splits the result cache and breaks the sharded-PDES equality.

Allowed: constructing ``random.Random(seed)`` and
``numpy.random.default_rng(seed)`` / ``Generator`` / ``SeedSequence``
with an explicit seed.  Flagged: every other ``random.*`` /
``np.random.*`` call, unseeded ``default_rng()``, and importing the
module-level helpers (``from random import choice``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import import_aliases

#: stdlib ``random`` attributes that are fine to touch
_STDLIB_OK = {"Random"}
#: ``numpy.random`` attributes that are fine when given an explicit seed
_NUMPY_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}


class GlobalRng(Rule):
    id = "global-rng"
    hint = (
        "draw from the machine's seeded per-PE streams (machine.rngs[pe]) "
        "or a local random.Random(seed)"
    )

    def check_file(self, ctx, index) -> Iterable[Finding]:
        out: list[Finding] = []
        random_names = import_aliases(ctx.tree, "random")
        numpy_names = import_aliases(ctx.tree, "numpy")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _STDLIB_OK:
                        out.append(
                            self.finding(
                                ctx,
                                node.lineno,
                                node.col_offset,
                                f"importing random.{alias.name} binds the "
                                f"process-global RNG stream",
                            )
                        )
            elif isinstance(node, ast.Attribute):
                value = node.value
                # random.<fn> on the stdlib module
                if isinstance(value, ast.Name) and value.id in random_names:
                    if node.attr not in _STDLIB_OK:
                        out.append(
                            self.finding(
                                ctx,
                                node.lineno,
                                node.col_offset,
                                f"random.{node.attr} uses process-global RNG "
                                f"state (unseeded, shared across the run)",
                            )
                        )
                # np.random.<fn> on the numpy global-state API
                elif (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in numpy_names
                ):
                    if node.attr not in _NUMPY_OK:
                        out.append(
                            self.finding(
                                ctx,
                                node.lineno,
                                node.col_offset,
                                f"numpy.random.{node.attr} mutates numpy's "
                                f"process-global RNG state",
                            )
                        )
            elif isinstance(node, ast.Call):
                # default_rng() with no arguments seeds from the OS
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    out.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "default_rng() without a seed draws OS entropy — "
                            "results cannot replay from the scenario seed",
                        )
                    )
        return out


@RULES.register(
    "global-rng",
    metadata={
        "summary": "no random.* / np.random global-state calls anywhere in "
        "repro — every draw must come from a seeded instance",
    },
)
def _build(rest: str = "") -> GlobalRng:
    return GlobalRng()
