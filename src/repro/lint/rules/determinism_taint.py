"""determinism-taint — nondeterministic values never reach results.

The repo's reproducibility story rests on three sinks being functions
of the seed alone: :class:`SimResult` fields (golden suites diff them),
cache keys (``content_hash`` / hashlib digests — a nondeterministic key
silently splits the cache), and the ``stats`` counters the PDES shard
boundary protocol undo-logs (a nondeterministic counter breaks shard
equality).  The existing point rules (``wall-clock-in-kernel``,
``direct-rng``) flag the *sources* where they appear in kernel files;
this rule tracks the *values*: wall-clock reads, module-level RNG
draws, and set-iteration loop variables are taint sources, and the
taint is propagated through local assignments and helper-function
returns (an interprocedural fixpoint over the flow project's call
tables) to any of the three sinks.  The full source→sink chain is
attached to the finding — ``repro lint --explain`` prints it.
"""

from __future__ import annotations

from typing import Iterable

from ..findings import Finding
from . import RULES, Rule

#: files scanned for sinks: the kernel packages plus the two layers
#: that build cache keys from run artifacts
_SINK_SCOPE = (
    "repro/core/",
    "repro/oracle/",
    "repro/pdes/",
    "repro/topology/",
    "repro/scenario/",
    "repro/parallel/",
)


class DeterminismTaint(Rule):
    id = "determinism-taint"
    hint = (
        "derive the value from the seed/config (or drop it from the "
        "result); run `repro lint --explain` for the source→sink chain"
    )

    def check_project(self, index) -> Iterable[Finding]:
        from ..flow.project import flow_for
        from ..flow.strategies import logged_counters, render_trace
        from ..flow.taint import TaintAnalysis

        project = flow_for(index)
        analysis = TaintAnalysis(project, _SINK_SCOPE)
        out: list[Finding] = []
        for tf in analysis.findings(logged_counters(index)):
            out.append(
                self.finding(
                    tf.rel,
                    tf.line,
                    tf.col,
                    f"{tf.sink} derives from {tf.source}",
                    explain=render_trace(tf.chain, ""),
                )
            )
        return out


@RULES.register(
    "determinism-taint",
    metadata={
        "summary": "wall-clock, global-RNG, and set-iteration-order values "
        "must not flow into SimResult fields, cache keys, or undo-logged "
        "counters",
    },
)
def _build(rest: str = "") -> DeterminismTaint:
    return DeterminismTaint()
