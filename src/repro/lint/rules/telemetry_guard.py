"""telemetry-guard — the disabled telemetry path must stay free.

The telemetry contract (:mod:`repro.obs.telemetry`) is that a run with
no sink configured pays *nothing*.  The module-level ``emit()`` does
check the sink internally — but Python evaluates the call's keyword
arguments first, so an unguarded ``telemetry.emit("ev", key=k[:12])``
allocates and formats on every call even when telemetry is off.  And a
sink obtained via ``sink()`` can be ``None``, so calling methods on it
unguarded is an outright crash in the disabled (default!) mode.

The blessed shape, everywhere outside :mod:`repro.obs.telemetry`
itself::

    tele = _telemetry.sink()
    if tele is not None:
        tele.emit("cache.hit", key=key[:12])

Early-return guards (``if tele is None: return``) are recognized too.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..findings import Finding
from . import RULES, Rule
from ._ast_util import enclosing_function, import_aliases

_SELF = "repro/obs/telemetry.py"


def _statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement in document order, descending into blocks."""
    for stmt in body:
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list):
                yield from _statements(sub)
        for handler in getattr(stmt, "handlers", ()):
            yield from _statements(handler.body)


def _is_none_compare(test: ast.expr, var: str, negated: bool) -> bool:
    """``var is not None`` (negated=False) or ``var is None`` (negated=True)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    left, op, right = test.left, test.ops[0], test.comparators[0]
    if not (isinstance(left, ast.Name) and left.id == var):
        return False
    if not (isinstance(right, ast.Constant) and right.value is None):
        return False
    return isinstance(op, ast.Is if negated else ast.IsNot)


def _test_guards(test: ast.expr, var: str | None, aliases: set[str]) -> bool:
    """Does this if-test establish that telemetry is live?"""
    for node in ast.walk(test):
        if var is not None and _is_none_compare(node, var, negated=False):
            return True
        if var is not None and isinstance(node, ast.Name) and node.id == var and node is test:
            return True  # bare `if tele:` truthiness guard
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            value = node.func.value
            if (
                isinstance(value, ast.Name)
                and value.id in aliases
                and node.func.attr in ("enabled", "sink")
            ):
                return True
    return False


def _guarded(call: ast.Call, var: str | None, aliases: set[str]) -> bool:
    # 1. an enclosing `if <guard>:` with the call in the *body* branch
    prev: ast.AST = call
    cur = getattr(call, "_lint_parent", None)
    while cur is not None:
        if isinstance(cur, ast.If) and prev in cur.body:
            if _test_guards(cur.test, var, aliases):
                return True
        if isinstance(cur, ast.IfExp) and prev is cur.body:
            if _test_guards(cur.test, var, aliases):
                return True
        prev, cur = cur, getattr(cur, "_lint_parent", None)
    # 2. an earlier early-return guard in the same function
    if var is not None:
        fn = enclosing_function(call)
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in _statements(fn.body):
                if stmt.lineno >= call.lineno:
                    break
                if (
                    isinstance(stmt, ast.If)
                    and _is_none_compare(stmt.test, var, negated=True)
                    and stmt.body
                    and isinstance(
                        stmt.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
                    )
                ):
                    return True
    return False


class TelemetryGuard(Rule):
    id = "telemetry-guard"
    hint = (
        "hoist `tele = telemetry.sink()` and guard the call with "
        "`if tele is not None:` so the disabled path evaluates nothing"
    )

    def check_file(self, ctx, index) -> Iterable[Finding]:
        if ctx.rel == _SELF:
            return []
        out: list[Finding] = []
        aliases = import_aliases(ctx.tree, "telemetry")
        emit_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.endswith("telemetry"):
                    for alias in node.names:
                        if alias.name == "emit":
                            emit_aliases.add(alias.asname or alias.name)
        if not aliases and not emit_aliases:
            return []
        # names assigned from <telemetry>.sink()
        sink_vars: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "sink"
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id in aliases
                ):
                    sink_vars.add(target.id)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # telemetry.emit(...) — module-level helper, eager arguments
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "emit"
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                if not _guarded(node, None, aliases):
                    out.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "unguarded telemetry.emit: arguments are built "
                            "eagerly even while telemetry is disabled",
                        )
                    )
            elif isinstance(func, ast.Name) and func.id in emit_aliases:
                if not _guarded(node, None, aliases):
                    out.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "unguarded emit(): arguments are built eagerly "
                            "even while telemetry is disabled",
                        )
                    )
            # tele.emit(...) / tele.gauge(...) on a sink()-derived name
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in sink_vars
            ):
                var = func.value.id
                if not _guarded(node, var, aliases):
                    out.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"{var}.{func.attr}() on a sink()-derived value "
                            f"without a None guard — crashes when telemetry "
                            f"is disabled",
                        )
                    )
        return out


@RULES.register(
    "telemetry-guard",
    metadata={
        "summary": "every telemetry.emit call site lexically guarded by a "
        "sink()-is-not-None check, so disabled telemetry costs nothing",
    },
)
def _build(rest: str = "") -> TelemetryGuard:
    return TelemetryGuard()
