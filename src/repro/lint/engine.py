"""The lint driver: walk files, run rules, filter waivers + baseline.

``run_lint`` is the library entry point (the CLI and the self-lint test
both call it): collect ``*.py`` files under the given paths, parse each
once into a :class:`~repro.lint.context.FileContext`, aggregate the
:class:`~repro.lint.context.ProjectIndex`, then give every registered
rule one pass per file (:meth:`Rule.check_file`) plus one pass over the
whole project (:meth:`Rule.check_project`).  Findings are filtered
through inline waivers (``# lint: ok[rule]``) and the committed
baseline, then sorted.

Exit-code contract (the CLI maps :class:`LintResult` onto it):

* ``0`` — clean (every finding fixed, waived, or baselined);
* ``1`` — findings remain;
* ``2`` — usage or environment error (bad path, malformed baseline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .context import FileContext, ProjectIndex
from .findings import Baseline, Finding
from .rules import RULES, Rule

__all__ = ["LintResult", "collect_files", "default_root", "run_lint"]

#: directories never walked (caches, VCS internals)
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def default_root() -> Path:
    """The installed ``repro`` package directory — what ``repro lint`` lints."""
    return Path(__file__).resolve().parents[1]


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
            continue
        for sub in path.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in sub.parts):
                out.add(sub.resolve())
    return sorted(out)


@dataclass
class LintResult:
    """Everything one lint pass produced."""

    findings: list[Finding] = field(default_factory=list)
    #: findings suppressed by the baseline (reported, never failing)
    baselined: list[Finding] = field(default_factory=list)
    #: findings suppressed by inline waivers
    waived: list[Finding] = field(default_factory=list)
    #: stale baseline entries that matched nothing this pass
    stale_baseline: list = field(default_factory=list)
    files: int = 0
    #: files that failed to parse: (path, error)
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "clean": self.clean,
            "files": self.files,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "waived": [f.to_dict() for f in self.waived],
            "stale_baseline": [e.to_dict() for e in self.stale_baseline],
            "errors": [{"path": p, "error": e} for p, e in self.errors],
        }

    def render_text(self, explain: bool = False) -> str:
        """The human report (one line per finding, summary trailer).

        With ``explain=True``, findings that carry a propagation trace
        (``Finding.explain``) print it indented under their line.
        """
        lines = []
        for f in self.findings:
            lines.append(f.render())
            if explain and f.explain:
                lines.extend(f"    {step}" for step in f.explain.splitlines())
        for path, error in self.errors:
            lines.append(f"{path}:0:0: [parse-error] {error}")
        for entry in self.stale_baseline:
            lines.append(
                f"{entry.path}:0:0: [stale-baseline] baseline entry for "
                f"{entry.rule!r} matched nothing — delete it "
                f"(reason was: {entry.reason})"
            )
        counts = f"{len(self.findings)} finding(s) in {self.files} file(s)"
        if self.baselined:
            counts += f", {len(self.baselined)} baselined"
        if self.waived:
            counts += f", {len(self.waived)} waived"
        lines.append(counts)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotations (one per finding).

        ``::error file=...,line=...,col=...,title=...::message`` lines
        render inline on the PR diff.  Newlines in messages are encoded
        as ``%0A`` per the workflow-command escaping rules.
        """

        def esc(text: str) -> str:
            return (
                text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A")
            )

        lines = []
        for f in self.findings:
            message = f.message if not f.hint else f"{f.message} (fix: {f.hint})"
            lines.append(
                f"::error file={f.path},line={f.line},col={f.col},"
                f"title=repro-lint {f.rule}::{esc(message)}"
            )
        for path, error in self.errors:
            lines.append(
                f"::error file={path},line=1,title=repro-lint parse-error::"
                f"{esc(error)}"
            )
        for entry in self.stale_baseline:
            lines.append(
                f"::warning file={entry.path},title=repro-lint stale-baseline::"
                f"{esc(f'baseline entry for {entry.rule!r} matched nothing — delete it')}"
            )
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files} file(s)"
        )
        return "\n".join(lines)


def make_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate every registered rule (or the ``only`` subset)."""
    names = RULES.names() if only is None else tuple(only)
    return [RULES.make(name) for name in names]


def run_lint(
    paths: Sequence[str | Path] | None = None,
    *,
    baseline: Baseline | None = None,
    rules: Iterable[str] | None = None,
) -> LintResult:
    """Lint ``paths`` (default: the installed ``repro`` package)."""
    targets = collect_files([default_root()] if paths is None else paths)
    result = LintResult()
    index = ProjectIndex()
    contexts: list[FileContext] = []
    for path in targets:
        try:
            ctx = FileContext.parse(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append((str(path), str(exc)))
            continue
        contexts.append(ctx)
        index.add(ctx)
    result.files = len(contexts)

    active = make_rules(rules)
    raw: list[Finding] = []
    for rule in active:
        for ctx in contexts:
            raw.extend(rule.check_file(ctx, index))
        raw.extend(rule.check_project(index))

    # Stable ordering, then waiver and baseline filtering.  Anchors come
    # from the parsed contexts so baseline matching sees exactly the
    # source text the finding points at.
    by_rel = {ctx.rel: ctx for ctx in contexts}
    for finding in sorted(set(raw)):
        ctx = by_rel.get(finding.path)
        if ctx is not None and ctx.waived(finding.line, finding.rule):
            result.waived.append(finding)
            continue
        anchor = ctx.line_text(finding.line) if ctx is not None else ""
        if baseline is not None and baseline.suppresses(finding, anchor):
            result.baselined.append(finding)
            continue
        result.findings.append(finding)
    if baseline is not None:
        result.stale_baseline = list(baseline.unused())
    return result


def anchors_for(result: LintResult, paths: Sequence[str | Path] | None = None) -> dict:
    """(path, line) -> source anchor for every finding (baseline writing)."""
    targets = collect_files([default_root()] if paths is None else paths)
    by_rel: dict[str, FileContext] = {}
    for path in targets:
        try:
            ctx = FileContext.parse(path)
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        by_rel[ctx.rel] = ctx
    out = {}
    for finding in result.findings:
        ctx = by_rel.get(finding.path)
        if ctx is not None:
            out[(finding.path, finding.line)] = ctx.line_text(finding.line)
    return out
