"""Strategy shardability: declared flags vs. inferred effects.

The PDES shardability contract (:mod:`repro.core.base`,
:mod:`repro.pdes.shard`) says a strategy may run sharded iff, during
the *event phase*, its hooks and their scheduled callbacks

* touch machine state (live loads, queues, sends) only for the acting
  PE,
* touch per-PE strategy state only in the acting PE's row,
* never read-and-write strategy-global scalar state,
* draw only from the acting PE's logged stream (``machine.rngs[pe]``),
* schedule events only at the acting PE's site,
* mutate only undo-logged ``stats`` counters,
* never read the wall clock or iterate a set in hash order.

``setup()``/``start()`` are the **preamble**: replicated identically on
every shard before the event phase (the shard worker runs them
everywhere, then prunes foreign-site events), so locality rules do not
apply there — but anything they *schedule* runs in the event phase at
the site it was scheduled at, and is checked with that site's PE as
acting.

:func:`analyze_strategy` instantiates every entry point, collects the
inferred per-entry effects (the golden effect-summary test pins these),
and derives violations.  A strategy declared ``shardable = True`` with
violations is a contract breach; one declared ``False`` with *no*
violations is a promotion candidate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..context import ClassInfo, ProjectIndex
from .model import (
    ACTING,
    Bindings,
    Effect,
    GLOBAL,
    OTHER,
    Step,
    Summary,
    Trace,
    describe_loc,
    substitute_loc,
)
from .project import FlowProject, ResolvedSched

__all__ = [
    "EntryEffects",
    "StrategyReport",
    "Violation",
    "analyze_strategy",
    "discover_strategies",
    "logged_counters",
]

#: the event hooks; the first parameter names the acting PE
HOOKS: Tuple[str, ...] = (
    "on_goal_created",
    "on_goal_message",
    "on_word",
    "on_idle",
    "on_load_changed",
)
#: replicated-preamble lifecycle methods (locality-exempt)
PREAMBLE: Tuple[str, ...] = ("setup", "start")


@dataclass(frozen=True)
class Violation:
    """One inferred effect that breaks the shardability contract."""

    entry: str
    effect: Effect
    reason: str
    trace: Trace

    def describe(self) -> str:
        return f"{self.entry}: {self.effect.describe()} — {self.reason}"


@dataclass
class EntryEffects:
    """The instantiated effects of one entry point (hook or callback)."""

    label: str
    phase: str  # "event" | "preamble"
    effects: Dict[Effect, Trace] = field(default_factory=dict)


@dataclass
class StrategyReport:
    """Everything the analysis inferred about one registered strategy."""

    name: str
    cls: str
    rel: str
    line: int
    declared: Optional[bool]
    entries: List[EntryEffects] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def inferred_shardable(self) -> bool:
        return not self.violations

    @property
    def promotion_candidate(self) -> bool:
        return self.declared is False and self.inferred_shardable

    @property
    def contract_breach(self) -> bool:
        return bool(self.declared) and not self.inferred_shardable

    def effect_lines(self) -> List[str]:
        """Stable ``entry: effect`` lines (the golden test pins these).

        Pure config reads (``self.x`` scalars never written in the
        event phase) are dropped — they are ubiquitous and carry no
        shardability signal; everything else is kept.
        """
        written: Set[str] = set()
        for entry in self.entries:
            for effect in entry.effects:
                if effect.kind == "write" and effect.what.startswith("self."):
                    written.add(effect.what)
        lines: Set[str] = set()
        for entry in self.entries:
            for effect in entry.effects:
                if (
                    effect.kind == "read"
                    and effect.what.startswith("self.")
                    and not effect.what.endswith("[·]")
                    and effect.what not in written
                ):
                    continue
                lines.add(f"{entry.label}: {effect.describe()}")
        return sorted(lines)


def _string_set(value: ast.expr) -> Optional[Set[str]]:
    if isinstance(value, ast.Call) and value.args:
        return _string_set(value.args[0])
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.add(elt.value)
            else:
                return None
        return out
    return None


def logged_counters(index: ProjectIndex) -> Optional[Set[str]]:
    """``_LOGGED_COUNTERS`` from ``repro/pdes/shard.py`` (None if absent)."""
    shard = index.find_file("repro/pdes/shard.py")
    if shard is None:
        return None
    for node in ast.walk(shard.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "_LOGGED_COUNTERS":
                return _string_set(node.value)
    return None


def discover_strategies(
    index: ProjectIndex,
) -> List[Tuple[str, str, str, int]]:
    """Registered strategies: ``(name, class, rel, register line)``."""
    out: List[Tuple[str, str, str, int]] = []
    seen: Set[Tuple[str, str]] = set()
    for rel in sorted(index.files):
        ctx = index.files[rel]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "register"
                and isinstance(func.value, ast.Name)
                and func.value.id == "STRATEGIES"
            ):
                continue
            if not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            cls_name: Optional[str] = None
            for kw in node.keywords:
                if kw.arg == "cls" and isinstance(kw.value, ast.Name):
                    cls_name = kw.value.id
            if cls_name is None or (name, cls_name) in seen:
                continue
            seen.add((name, cls_name))
            out.append((name, cls_name, ctx.rel, node.lineno))
    return out


def _declared_shardable(index: ProjectIndex, cls: str) -> Optional[bool]:
    value = index.mro_attr(cls, "shardable")
    if isinstance(value, ast.Constant) and isinstance(value.value, bool):
        return value.value
    return None


def _class_site(index: ProjectIndex, cls: str) -> Tuple[str, int]:
    """Where to anchor findings: the strategy's own class definition."""
    for info in index.classes.get(cls, ()):  # first definition
        return info.rel, info.lineno
    return "", 0


def _entry_bindings(summary: Summary, acting_first: bool) -> Bindings:
    bindings: Bindings = {}
    for i, param in enumerate(summary.params):
        bindings[param] = ACTING if (acting_first and i == 0) else OTHER
    return bindings


def _instantiate(
    effects: Dict[Effect, Trace], bindings: Bindings
) -> Dict[Effect, Trace]:
    out: Dict[Effect, Trace] = {}
    for effect, trace in effects.items():
        lifted = Effect(
            effect.kind, effect.what, substitute_loc(effect.loc, bindings)
        )
        old = out.get(lifted)
        if old is None or len(trace) < len(old):
            out[lifted] = trace
    return out


def _check_entry(
    entry: EntryEffects,
    logged: Optional[Set[str]],
) -> List[Violation]:
    """Contract checks for one event-phase entry (see module docstring)."""
    out: List[Violation] = []
    if entry.phase != "event":
        return out
    for effect, trace in sorted(entry.effects.items()):
        loc = effect.loc
        kind, what = effect.kind, effect.what
        if kind in ("read", "write", "send") and what.startswith("machine."):
            if loc != ACTING:
                verb = {
                    "read": "reads machine state of",
                    "write": "mutates machine state of",
                    "send": "originates a message from",
                }[kind]
                out.append(
                    Violation(
                        entry.label,
                        effect,
                        f"{verb} a PE that is not provably the acting one "
                        f"({describe_loc(loc)})",
                        trace,
                    )
                )
        elif kind in ("read", "write") and what.endswith("[·]"):
            if loc != ACTING:
                out.append(
                    Violation(
                        entry.label,
                        effect,
                        f"touches another PE's row of per-PE strategy state "
                        f"({describe_loc(loc)})",
                        trace,
                    )
                )
        elif kind == "rng":
            if loc == GLOBAL:
                out.append(
                    Violation(
                        entry.label,
                        effect,
                        "draws from a shared/unlogged RNG stream — shards "
                        "interleave draws differently and desynchronize",
                        trace,
                    )
                )
            elif loc != ACTING:
                out.append(
                    Violation(
                        entry.label,
                        effect,
                        f"draws from another PE's logged stream "
                        f"({describe_loc(loc)}) — its owning shard never "
                        f"sees the draw",
                        trace,
                    )
                )
        elif kind == "clock":
            out.append(
                Violation(
                    entry.label,
                    effect,
                    "reads the wall clock in the event phase",
                    trace,
                )
            )
        elif kind == "schedule":
            if loc != ACTING:
                where = (
                    "the machine's global site (site 0)"
                    if loc == GLOBAL
                    else f"a site that is not the acting PE's "
                    f"({describe_loc(loc)})"
                )
                out.append(
                    Violation(
                        entry.label,
                        effect,
                        f"schedules an event at {where} — the owning shard "
                        f"never executes it",
                        trace,
                    )
                )
        elif kind == "counter":
            if logged is not None and what not in logged:
                out.append(
                    Violation(
                        entry.label,
                        effect,
                        f"mutates stats.{what}, which is not in "
                        f"_LOGGED_COUNTERS — rollback past K* corrupts it",
                        trace,
                    )
                )
        elif kind == "set-iter":
            out.append(
                Violation(
                    entry.label,
                    effect,
                    "iterates a set in hash order in the event phase",
                    trace,
                )
            )
    return out


def _shared_scalar_violations(entries: List[EntryEffects]) -> List[Violation]:
    """Strategy-global scalars both read and written in the event phase.

    A write-only scalar (``self.last = pe``) and an augment-only counter
    (``self.steals += 1``) are diagnostics; a scalar that is *read back*
    is decision state shared across PEs — shards diverge on it.
    """
    reads: Dict[str, Tuple[str, Trace]] = {}
    writes: Dict[str, Tuple[str, Effect, Trace]] = {}
    for entry in entries:
        if entry.phase != "event":
            continue
        for effect, trace in entry.effects.items():
            if not effect.what.startswith("self.") or effect.what.endswith("[·]"):
                continue
            if effect.kind == "read":
                reads.setdefault(effect.what, (entry.label, trace))
            elif effect.kind == "write":
                writes.setdefault(effect.what, (entry.label, effect, trace))
    out: List[Violation] = []
    for what in sorted(set(reads) & set(writes)):
        label, effect, trace = writes[what]
        out.append(
            Violation(
                label,
                effect,
                f"{what} is strategy-global scalar state both read and "
                f"written in the event phase — shards diverge on it",
                trace,
            )
        )
    return out


def analyze_strategy(
    project: FlowProject,
    index: ProjectIndex,
    name: str,
    cls: str,
) -> StrategyReport:
    """Infer the effect summaries and verdict for one strategy class."""
    rel, line = _class_site(index, cls)
    report = StrategyReport(
        name=name,
        cls=cls,
        rel=rel,
        line=line,
        declared=_declared_shardable(index, cls),
    )

    roots: List[Tuple[str, Summary, Bindings, str]] = []
    for hook in HOOKS:
        summary = project.resolve_method(cls, hook)
        if summary is None or summary.owner == "Strategy":
            continue  # unimplemented or the abstract no-op
        roots.append((hook, summary, _entry_bindings(summary, True), "event"))
    for meth in PREAMBLE:
        summary = project.resolve_method(cls, meth)
        if summary is None or summary.owner == "Strategy":
            continue
        roots.append((meth, summary, _entry_bindings(summary, False), "preamble"))

    closures = project.closures_for(cls, [s for _, s, _, _ in roots])

    logged = logged_counters(index)
    queue: List[Tuple[str, Summary, Bindings, str]] = list(roots)
    seen: Set[Tuple[str, Tuple[Tuple[str, object], ...]]] = set()
    while queue:
        label, summary, bindings, phase = queue.pop(0)
        ident = (
            summary.key,
            tuple(sorted(
                (k, ResolvedSched.canon_binding(v)) for k, v in bindings.items()
            )),
        )
        if ident in seen:
            continue
        seen.add(ident)
        closure = closures.get(summary.key)
        if closure is None:
            closure = project.closure(cls, summary)
            closures[summary.key] = closure
        entry = EntryEffects(label, phase, _instantiate(closure.effects, bindings))
        report.entries.append(entry)
        report.violations.extend(_check_entry(entry, logged))
        # every scheduled callback becomes a new event-phase entry whose
        # acting PE is the site PE
        for sched in closure.scheds.values():
            target = project.summary_by_key(sched.target)
            if target is None:
                continue
            inst: Bindings = {
                p: _subst_binding(v, bindings)
                for p, v in sched.as_bindings().items()
            }
            site = substitute_loc(sched.site_loc, bindings)
            # strip synthetic line suffixes (`<lambda:133>` -> `<lambda>`)
            # so golden effect pins survive unrelated line shifts
            short = re.sub(r":\d+>$", ">", target.qual.split(".")[-1])
            queue.append(
                (f"{label} -> {short}", target, inst, "event")
            )
            _ = site  # the schedule effect itself was checked above
    report.violations.extend(_shared_scalar_violations(report.entries))
    # deterministic order for reports and goldens
    report.violations.sort(key=lambda v: (v.entry, v.effect, v.reason))
    return report


def _subst_binding(binding: object, bindings: Bindings) -> object:
    from .model import substitute_binding

    return substitute_binding(binding, bindings)  # type: ignore[arg-type]


def render_trace(trace: Trace, indent: str = "    ") -> str:
    return "\n".join(f"{indent}{step.describe()}" for step in trace)
