"""The flow engine's currency: effects, localities, and summaries.

The whole analysis is built around one question — *which PE's state
does this code touch?* — so every observable action a function may
perform is normalized to an :class:`Effect`: a ``kind`` (read / write /
send / rng / clock / counter / schedule / set-iter), a ``what`` (the
canonical name of the touched surface, e.g. ``machine.load_of`` or
``self._probing[·]``) and a :data:`Loc` — the *locality* of the touch.

Localities form a tiny abstract domain:

* ``ACTING`` — the PE the current event is executing at (the first
  parameter of a strategy hook, or the PE a scheduled callback's site
  binds);
* ``OTHER`` — some PE we cannot prove is the acting one;
* ``GLOBAL`` — machine-global state (site 0 in the PDES site layout);
* ``("param", name, idx)`` — *parameterized*: the locality of the
  caller's argument bound to ``name`` (``idx`` selects an element when
  the argument is a tuple payload, else ``None``).

Parameterized localities are what make summaries reusable: a helper
like ``_place(pe, msg)`` has one summary, and each call edge
instantiates it — binding ``pe`` to ``ACTING`` on the hook path makes
the helper's reads shard-local, binding it to ``OTHER`` on a foreign
message path makes the very same reads violations.

Every effect carries a :data:`Trace` (call-path steps) so ``repro lint
--explain`` can print *how* the effect is reached, not just that it is.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Optional, Tuple, Union

__all__ = [
    "ACTING",
    "Bindings",
    "Binding",
    "CallEdge",
    "Effect",
    "GLOBAL",
    "Loc",
    "OTHER",
    "SchedEdge",
    "Step",
    "Summary",
    "Trace",
    "describe_loc",
    "substitute_binding",
    "substitute_loc",
]

#: A locality value (see the module docstring for the four shapes).
Loc = Tuple[object, ...]

ACTING: Loc = ("acting",)
OTHER: Loc = ("other",)
GLOBAL: Loc = ("global",)


def param_loc(name: str, idx: Optional[int] = None) -> Loc:
    """The parameterized locality of argument ``name`` (element ``idx``)."""
    return ("param", name, idx)


def describe_loc(loc: Loc) -> str:
    """Stable human rendering (``acting`` / ``other`` / ``param:pe``)."""
    if loc and loc[0] == "param":
        name = loc[1]
        idx = loc[2] if len(loc) > 2 else None
        return f"param:{name}" if idx is None else f"param:{name}[{idx}]"
    return str(loc[0]) if loc else "other"


#: A call-argument binding: one locality, or per-element localities
#: when the argument is a tuple expression (event payloads).
Binding = Union[Loc, Dict[int, Loc]]
#: callee parameter name -> binding
Bindings = Dict[str, Binding]


def substitute_loc(loc: Loc, bindings: Bindings) -> Loc:
    """Resolve a parameterized locality through one call edge."""
    if not loc or loc[0] != "param":
        return loc
    name = str(loc[1])
    idx = loc[2] if len(loc) > 2 else None
    bound = bindings.get(name)
    if bound is None:
        return OTHER
    if isinstance(bound, dict):
        if isinstance(idx, int):
            return bound.get(idx, OTHER)
        return OTHER  # a tuple flowed where a scalar locality was needed
    if isinstance(idx, int) and bound and bound[0] == "param":
        # the whole payload was passed through: select inside the
        # caller's own parameter instead
        if len(bound) > 2 and bound[2] is None:
            return (bound[0], bound[1], idx)
    return bound


def substitute_binding(binding: Binding, bindings: Bindings) -> Binding:
    if isinstance(binding, dict):
        return {i: substitute_loc(v, bindings) for i, v in binding.items()}
    return substitute_loc(binding, bindings)


@dataclass(frozen=True, order=True)
class Effect:
    """One observable action: ``kind`` on ``what`` at locality ``loc``.

    Kinds: ``read`` / ``write`` (machine or per-strategy state),
    ``send`` (message origin), ``rng`` (stream draw), ``clock``
    (wall-clock read), ``counter`` (``stats.*`` mutation, ``what`` is
    the counter name), ``augment`` (write-only ``self.x += 1``
    diagnostic accumulation — reported, never a violation),
    ``schedule`` (event insertion, ``loc`` is the target site's PE),
    ``set-iter`` (hash-order iteration).
    """

    kind: str
    what: str
    loc: Loc = GLOBAL

    def describe(self) -> str:
        if self.kind in ("counter", "clock", "set-iter", "augment"):
            return f"{self.kind} {self.what}"
        return f"{self.kind} {self.what}[{describe_loc(self.loc)}]"


class Step(NamedTuple):
    """One hop of an effect's propagation path (for ``--explain``)."""

    qual: str
    rel: str
    line: int
    note: str

    def describe(self) -> str:
        return f"{self.rel}:{self.line} in {self.qual}: {self.note}"


#: The propagation path of an effect, outermost call first.
Trace = Tuple[Step, ...]

#: traces longer than this are truncated (cycles in the call graph)
MAX_TRACE = 16


def join_trace(head: Step, tail: Trace) -> Trace:
    return ((head,) + tail)[:MAX_TRACE]


@dataclass(frozen=True)
class CallEdge:
    """A direct (synchronous) call to another analyzed function.

    ``target`` is symbolic — resolution is deferred to the fixpoint so
    the same extraction serves every subclass: ``("self", name)``
    resolves through the analysis class's MRO, ``("super", name)``
    past the defining class, ``("func", name)`` against module-level
    functions, ``("synthetic", key)`` against callback summaries
    manufactured at schedule sites (lambdas, local closures).
    """

    target: Tuple[str, str]
    line: int
    args: Tuple[Binding, ...] = ()
    kwargs: Tuple[Tuple[str, Binding], ...] = ()
    note: str = ""


@dataclass(frozen=True)
class SchedEdge:
    """An *asynchronous* call: a callback registered with the engine.

    Unlike a :class:`CallEdge`, the callee's effects do **not** occur
    inside the caller — they occur later, in the event phase, at the
    site ``site_loc`` identifies.  The scheduling function itself only
    gets a ``schedule`` effect; the callee becomes a fresh analysis
    entry whose acting PE is the site PE.
    """

    target: Tuple[str, str]
    line: int
    site_loc: Loc
    args: Tuple[Binding, ...] = ()
    kwargs: Tuple[Tuple[str, Binding], ...] = ()
    note: str = ""


@dataclass
class Summary:
    """The intraprocedural facts of one function (or callback).

    ``effects`` are parameterized over the function's own parameters;
    ``calls`` / ``scheds`` carry argument bindings in the same space,
    so the interprocedural fixpoint only ever substitutes localities.
    """

    qual: str
    rel: str
    line: int
    owner: Optional[str]
    params: Tuple[str, ...]
    effects: Dict[Effect, Trace] = field(default_factory=dict)
    calls: Tuple[CallEdge, ...] = ()
    scheds: Tuple[SchedEdge, ...] = ()
    #: callback summaries manufactured at this function's schedule sites
    synthetics: Tuple["Summary", ...] = ()

    @property
    def key(self) -> str:
        return f"{self.rel}:{self.qual}"

    def add_effect(self, effect: Effect, trace: Trace) -> None:
        old = self.effects.get(effect)
        if old is None or len(trace) < len(old):
            self.effects[effect] = trace


def bind_call(
    params: Tuple[str, ...],
    args: Tuple[Binding, ...],
    kwargs: Tuple[Tuple[str, Binding], ...],
) -> Bindings:
    """Map a resolved callee's parameters to the edge's argument bindings."""
    out: Bindings = {}
    for name, binding in zip(params, args):
        out[name] = binding
    for name, binding in kwargs:
        if name in params:
            out[name] = binding
    return out


def node_span(node: ast.AST) -> int:
    """The 1-based line of an AST node (0 when absent)."""
    return int(getattr(node, "lineno", 0))
