"""Intraprocedural effect extraction — one function at a time.

The extractor walks a function body **in program order**, maintaining a
small locality environment (local name → :data:`~.model.Loc`), and
produces a :class:`~.model.Summary`: base effects parameterized over
the function's own parameters, plus symbolic call edges and schedule
edges for the interprocedural fixpoint to resolve.

What it understands:

* the Machine primitive API (``machine.load_of(pe)`` reads the live
  load *of the PE the first argument names* — the table below maps
  each primitive to an effect kind and the argument that carries its
  locality);
* per-PE strategy state (``self._cursor[pe]`` — locality from the
  first subscript applied to the attribute) vs. strategy-global scalar
  state (``self._inbox`` — locality :data:`~.model.GLOBAL`);
* RNG streams (``machine.rngs[pe]`` is the acting stream when ``pe``
  is; a ``self.rng.random()`` draw is a shared stream);
* ``stats.<name>`` counter mutations;
* engine scheduling (``engine.schedule/after/tick/process``): the
  caller gets a ``schedule`` effect at the *site's* locality, and the
  callback becomes a :class:`~.model.SchedEdge` whose acting PE is the
  site PE — including ``lambda pe=pe: ...`` default-binding, local
  closures, and tuple payloads;
* wall-clock reads and hash-order set iteration (via the same local
  set-type inference the ``unordered-iteration`` rule uses).

Everything it does not understand defaults conservatively to
:data:`~.model.OTHER` — the analysis may over-report, never
under-report, non-local effects.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .model import (
    ACTING,
    Binding,
    CallEdge,
    Effect,
    GLOBAL,
    Loc,
    OTHER,
    SchedEdge,
    Step,
    Summary,
    param_loc,
)

__all__ = ["extract"]

#: Machine primitives: attr -> (effect kind, index of the locality arg).
#: ``None`` index = machine-global.
MACHINE_API: Dict[str, Tuple[str, Optional[int]]] = {
    "load_of": ("read", 0),
    "known_load": ("read", 0),
    "known_loads_of": ("read", 0),
    "enqueue": ("write", 0),
    "take_shippable": ("write", 0),
    "load_changed": ("write", 0),
    "goal_created": ("write", 0),
    "send_goal": ("send", 0),
    "post_word": ("send", 0),
    "post_to_neighbors": ("send", 0),
    "respond": ("send", 0),
    "finished": ("write", None),
}

#: Machine methods that read only static structure (safe anywhere).
MACHINE_PURE = {
    "neighbors",
    "distance",
    "next_hop",
    "diameter",
    "mean_distance",
    "channels_between",
}

#: engine methods that insert events; the value is the action-arg index
SCHED_METHODS = {"schedule": 1, "after": 1, "tick": 1, "process": 0}

#: container methods that mutate their receiver in place
MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

#: instance-RNG draw methods (a draw from a strategy-owned stream)
RNG_METHODS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "normalvariate",
    "randint",
    "random",
    "randrange",
    "sample",
    "shuffle",
    "uniform",
}

#: module-state clock reads
CLOCK_CALLS = {
    "time.time",
    "time.perf_counter",
    "time.monotonic",
    "time.process_time",
    "time.time_ns",
    "time.perf_counter_ns",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: identity-preserving wrappers ``loc(f(x)) == loc(x)``
_TRANSPARENT_CALLS = {"int", "abs"}

#: order-sensitive reducers (mirrors the unordered-iteration rule)
_ORDER_SENSITIVE = {"sum", "tuple", "list", "join", "fsum", "accumulate"}


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class _LocalSets:
    """Names statically set-typed in one function (order-taint source)."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: Set[str] = set()
        for _ in range(2):
            for node in ast.walk(scope):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                if isinstance(target, ast.Name) and value is not None:
                    if self.is_set(value):
                        self.names.add(target.id)
                    else:
                        self.names.discard(target.id)

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self.is_set(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


class _Extractor:
    """One pass over one function body (see the module docstring)."""

    def __init__(
        self,
        summary: Summary,
        env: Dict[str, Loc],
        mach: Set[str],
        eng: Set[str],
        sets: _LocalSets,
        self_name: Optional[str],
    ) -> None:
        self.s = summary
        self.env = env
        self.mach = mach  # names aliasing self.machine
        self.eng = eng  # names aliasing <machine>.engine
        self.sets = sets
        self.self_name = self_name
        self.calls: List[CallEdge] = []
        self.scheds: List[SchedEdge] = []
        self.synthetics: List[Summary] = []
        self.nested: Dict[str, ast.FunctionDef] = {}

    # -- bookkeeping ---------------------------------------------------------

    def emit(self, node: ast.AST, effect: Effect, note: str) -> None:
        line = int(getattr(node, "lineno", self.s.line))
        self.s.add_effect(effect, (Step(self.s.qual, self.s.rel, line, note),))

    def loc_of(self, node: ast.expr) -> Loc:
        """The locality an expression's *value* names (best effort)."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, OTHER)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _TRANSPARENT_CALLS
                and node.args
            ):
                return self.loc_of(node.args[0])
        return OTHER

    def binding_of(self, node: ast.expr, site_name: Optional[str] = None) -> Binding:
        """An argument's binding; tuple literals bind per element."""
        if isinstance(node, ast.Tuple):
            return {
                i: self._sched_loc(elt, site_name)
                for i, elt in enumerate(node.elts)
            }
        return self._sched_loc(node, site_name)

    def _sched_loc(self, node: ast.expr, site_name: Optional[str]) -> Loc:
        if (
            site_name is not None
            and isinstance(node, ast.Name)
            and node.id == site_name
        ):
            # the callback runs *at this PE's site* — inside it, this
            # value names the acting PE
            return ACTING
        return self.loc_of(node)

    def _is_machine(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.mach
        name = _dotted(node)
        return name is not None and (
            name == "self.machine" or name.endswith(".machine")
        )

    def _is_engine(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.eng or node.id == "engine"
        if isinstance(node, ast.Attribute) and node.attr == "engine":
            return True
        return False

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        """``X`` when the expression is ``self.X`` (and not the machine)."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == (self.self_name or "self")
            and node.attr != "machine"
        ):
            return node.attr
        return None

    def _subscript_base(
        self, node: ast.expr
    ) -> Optional[Tuple[str, ast.expr]]:
        """``(attr, first-index-expr)`` for ``self.X[i]`` / ``self.X[i][j]``."""
        if not isinstance(node, ast.Subscript):
            return None
        inner = node
        while isinstance(inner.value, ast.Subscript):
            inner = inner.value
        attr = self._self_attr(inner.value)
        if attr is None:
            return None
        return attr, inner.slice

    def _stats_attr(self, node: ast.expr) -> Optional[str]:
        """``X`` when the expression is ``<...>.stats.X`` / ``stats.X``."""
        if not isinstance(node, ast.Attribute):
            return None
        value = node.value
        if isinstance(value, ast.Name) and value.id == "stats":
            return node.attr
        if isinstance(value, ast.Attribute) and value.attr == "stats":
            return node.attr
        return None

    # -- statements ----------------------------------------------------------

    def block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested[node.name] = node  # analyzed only if scheduled
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.Assign):
            self.expr(node.value)
            for target in node.targets:
                self._assign(target, node.value)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.expr(node.value)
                self._assign(node.target, node.value)
            return
        if isinstance(node, ast.AugAssign):
            self.expr(node.value)
            self._augment(node)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.expr(node.iter)
            if self.sets.is_set(node.iter):
                self.emit(
                    node.iter,
                    Effect("set-iter", "set iteration"),
                    "for-loop iterates a set in hash order",
                )
            self._bind_names(node.target, OTHER)
            self.block(node.body)
            self.block(node.orelse)
            return
        if isinstance(node, ast.While):
            self.expr(node.test)
            self.block(node.body)
            self.block(node.orelse)
            return
        if isinstance(node, ast.If):
            self.expr(node.test)
            self.block(node.body)
            self.block(node.orelse)
            return
        if isinstance(node, ast.With):
            for item in node.items:
                self.expr(item.context_expr)
            self.block(node.body)
            return
        if isinstance(node, ast.Try):
            self.block(node.body)
            for handler in node.handlers:
                self.block(handler.body)
            self.block(node.orelse)
            self.block(node.finalbody)
            return
        if isinstance(node, (ast.Return, ast.Expr)) and node.value is not None:
            self.expr(node.value)
            return
        if isinstance(node, ast.Raise):
            if node.exc is not None:
                self.expr(node.exc)
            return
        if isinstance(node, ast.Assert):
            self.expr(node.test)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                sub = self._subscript_base(target)
                if sub is not None:
                    attr, idx = sub
                    self.emit(
                        target,
                        Effect("write", f"self.{attr}[·]", self.loc_of(idx)),
                        f"del self.{attr}[...]",
                    )
            return
        # default: walk any embedded expressions conservatively
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)

    def _bind_names(self, target: ast.expr, loc: Loc) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = loc
            self.mach.discard(target.id)
            self.eng.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_names(elt, loc)

    def _assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            self.env[name] = self.loc_of(value)
            self.mach.discard(name)
            self.eng.discard(name)
            dotted = _dotted(value)
            if dotted == "self.machine" or (
                isinstance(value, ast.Name) and value.id in self.mach
            ):
                self.mach.add(name)
            elif isinstance(value, ast.Attribute) and value.attr == "engine":
                self.eng.add(name)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            src = self.loc_of(value)
            for i, elt in enumerate(target.elts):
                if isinstance(elt, ast.Name):
                    if src and src[0] == "param" and len(src) > 2 and src[2] is None:
                        self.env[elt.id] = (src[0], src[1], i)
                    else:
                        self.env[elt.id] = OTHER
                else:
                    self._assign(elt, value)
            return
        stats = self._stats_attr(target)
        if stats is not None:
            self.emit(
                target, Effect("counter", stats), f"stats.{stats} = ..."
            )
            return
        sub = self._subscript_base(target)
        if sub is not None:
            attr, idx = sub
            self.emit(
                target,
                Effect("write", f"self.{attr}[·]", self.loc_of(idx)),
                f"self.{attr}[...] = ...",
            )
            self.expr(idx)
            return
        attr_name = self._self_attr(target)
        if attr_name is not None:
            self.emit(
                target,
                Effect("write", f"self.{attr_name}", GLOBAL),
                f"self.{attr_name} = ...",
            )
            return
        if isinstance(target, ast.Subscript):
            self.expr(target.value)
            self.expr(target.slice)

    def _augment(self, node: ast.AugAssign) -> None:
        target = node.target
        stats = self._stats_attr(target)
        if stats is not None:
            self.emit(target, Effect("counter", stats), f"stats.{stats} += ...")
            return
        sub = self._subscript_base(target)
        if sub is not None:
            attr, idx = sub
            self.emit(
                target,
                Effect("write", f"self.{attr}[·]", self.loc_of(idx)),
                f"self.{attr}[...] += ...",
            )
            return
        attr_name = self._self_attr(target)
        if attr_name is not None:
            # write-only accumulation: a diagnostic counter, not shared
            # decision state — reported but never a violation
            self.emit(
                target,
                Effect("augment", f"self.{attr_name}"),
                f"self.{attr_name} += ...",
            )

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Lambda):
            self._lambda_inline(node)
            return
        if isinstance(node, ast.Subscript):
            self._subscript(node, write=False)
            return
        if isinstance(node, ast.Attribute):
            attr_name = self._self_attr(node)
            if attr_name is not None:
                self.emit(
                    node,
                    Effect("read", f"self.{attr_name}", GLOBAL),
                    f"reads self.{attr_name}",
                )
            self.expr(node.value)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                self.expr(gen.iter)
                if self.sets.is_set(gen.iter):
                    self.emit(
                        gen.iter,
                        Effect("set-iter", "set iteration"),
                        "comprehension iterates a set in hash order",
                    )
                self._bind_names(gen.target, OTHER)
                for cond in gen.ifs:
                    self.expr(cond)
            if isinstance(node, ast.DictComp):
                self.expr(node.key)
                self.expr(node.value)
            else:
                self.expr(node.elt)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)

    def _subscript(self, node: ast.Subscript, write: bool) -> None:
        # machine.rngs[X] / machine.pes[X]
        value = node.value
        if isinstance(value, ast.Attribute) and self._is_machine(value.value):
            if value.attr == "rngs":
                self.emit(
                    node,
                    Effect("rng", "machine.rngs", self.loc_of(node.slice)),
                    "draws from machine.rngs[...]",
                )
                self.expr(node.slice)
                return
            if value.attr == "pes":
                self.emit(
                    node,
                    Effect(
                        "write" if write else "read",
                        "machine.pes",
                        self.loc_of(node.slice),
                    ),
                    "touches machine.pes[...]",
                )
                self.expr(node.slice)
                return
        sub = self._subscript_base(node)
        if sub is not None:
            attr, idx = sub
            self.emit(
                node,
                Effect(
                    "write" if write else "read",
                    f"self.{attr}[·]",
                    self.loc_of(idx),
                ),
                f"touches self.{attr}[...]",
            )
            self.expr(idx)
            return
        self.expr(node.value)
        self.expr(node.slice)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        name = _dotted(func)

        if name is not None and name in CLOCK_CALLS:
            self.emit(node, Effect("clock", name), f"reads the wall clock ({name})")
            self._walk_args(node)
            return

        if name is not None and (
            name.startswith("random.") or name.startswith("np.random.")
            or name.startswith("numpy.random.")
        ):
            self.emit(
                node,
                Effect("rng", name, GLOBAL),
                f"draws from module RNG state ({name})",
            )
            self._walk_args(node)
            return

        if isinstance(func, ast.Attribute):
            # engine.schedule / after / tick / process
            if func.attr in SCHED_METHODS and self._is_engine(func.value):
                self._schedule(node, func.attr)
                return
            # machine primitives
            if self._is_machine(func.value):
                self._machine_call(node, func.attr)
                return
            # super().m(...)
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                self.calls.append(
                    CallEdge(
                        ("super", func.attr),
                        node.lineno,
                        tuple(self.binding_of(a) for a in node.args),
                        tuple(
                            (kw.arg, self.binding_of(kw.value))
                            for kw in node.keywords
                            if kw.arg
                        ),
                        note=f"super().{func.attr}(...)",
                    )
                )
                self._walk_args(node)
                return
            # self.m(...) — a method call on the analysis class
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == (self.self_name or "self")
            ):
                if func.attr == "machine":
                    pass
                self.calls.append(
                    CallEdge(
                        ("self", func.attr),
                        node.lineno,
                        tuple(self.binding_of(a) for a in node.args),
                        tuple(
                            (kw.arg, self.binding_of(kw.value))
                            for kw in node.keywords
                            if kw.arg
                        ),
                        note=f"self.{func.attr}(...)",
                    )
                )
                self._walk_args(node)
                return
            # draws / mutations on self-owned state
            self_attr = self._self_attr(func.value)
            if self_attr is not None:
                if func.attr in RNG_METHODS:
                    self.emit(
                        node,
                        Effect("rng", f"self.{self_attr}", GLOBAL),
                        f"draws from strategy-owned stream self.{self_attr}",
                    )
                elif func.attr in MUTATING_METHODS:
                    self.emit(
                        node,
                        Effect("write", f"self.{self_attr}", GLOBAL),
                        f"self.{self_attr}.{func.attr}(...) mutates it",
                    )
                else:
                    self.emit(
                        node,
                        Effect("read", f"self.{self_attr}", GLOBAL),
                        f"reads self.{self_attr}",
                    )
                self._walk_args(node)
                return
            sub = self._subscript_base(func.value)
            if sub is not None:
                attr, idx = sub
                kind = "write" if func.attr in MUTATING_METHODS else "read"
                if func.attr in RNG_METHODS:
                    self.emit(
                        node,
                        Effect("rng", f"self.{attr}[·]", self.loc_of(idx)),
                        f"draws from per-PE stream self.{attr}[...]",
                    )
                else:
                    self.emit(
                        node,
                        Effect(kind, f"self.{attr}[·]", self.loc_of(idx)),
                        f"self.{attr}[...].{func.attr}(...)",
                    )
                self.expr(idx)
                self._walk_args(node)
                return
            # RNG methods on a machine.rngs[...] receiver are handled by
            # the subscript walk below; everything else: recurse.
            self.expr(func.value)
            self._walk_args(node)
            return

        if isinstance(func, ast.Name):
            if func.id in _ORDER_SENSITIVE and node.args and self.sets.is_set(
                node.args[0]
            ):
                self.emit(
                    node.args[0],
                    Effect("set-iter", "set iteration"),
                    f"{func.id}() consumes a set in hash order",
                )
            if func.id not in _TRANSPARENT_CALLS:
                self.calls.append(
                    CallEdge(
                        ("func", func.id),
                        node.lineno,
                        tuple(self.binding_of(a) for a in node.args),
                        tuple(
                            (kw.arg, self.binding_of(kw.value))
                            for kw in node.keywords
                            if kw.arg
                        ),
                        note=f"{func.id}(...)",
                    )
                )
            self._walk_args(node)
            return

        self.expr(func)
        self._walk_args(node)

    def _walk_args(self, node: ast.Call) -> None:
        for arg in node.args:
            self.expr(arg)
        for kw in node.keywords:
            self.expr(kw.value)

    def _machine_call(self, node: ast.Call, attr: str) -> None:
        if attr in MACHINE_PURE:
            self._walk_args(node)
            return
        spec = MACHINE_API.get(attr)
        if spec is None:
            # unknown machine method: assume it touches non-local state
            self.emit(
                node,
                Effect("read", f"machine.{attr}", OTHER),
                f"calls unrecognized machine API machine.{attr}(...) "
                f"(assumed non-local)",
            )
            self._walk_args(node)
            return
        kind, arg_idx = spec
        if arg_idx is None:
            loc: Loc = GLOBAL
        elif arg_idx < len(node.args):
            loc = self.loc_of(node.args[arg_idx])
        else:
            loc = OTHER
        self.emit(
            node,
            Effect(kind, f"machine.{attr}", loc),
            f"machine.{attr}(...) — locality from argument {arg_idx}",
        )
        self._walk_args(node)

    # -- scheduling ----------------------------------------------------------

    def _site(self, node: ast.Call) -> Tuple[Loc, Optional[str]]:
        """(site locality, site Name id) of a scheduling call."""
        site: Optional[ast.expr] = None
        for kw in node.keywords:
            if kw.arg == "site":
                site = kw.value
        if site is None:
            return GLOBAL, None  # site 0: the machine's global site
        expr = site
        if (
            isinstance(expr, ast.BinOp)
            and isinstance(expr.op, ast.Add)
        ):
            left, right = expr.left, expr.right
            if isinstance(left, ast.Constant) and left.value == 1:
                expr = right
            elif isinstance(right, ast.Constant) and right.value == 1:
                expr = left
        if isinstance(expr, ast.Constant):
            return GLOBAL, None
        loc = self.loc_of(expr)
        name = expr.id if isinstance(expr, ast.Name) else None
        return loc, name

    def _schedule(self, node: ast.Call, method: str) -> None:
        site_loc, site_name = self._site(node)
        self.emit(
            node,
            Effect("schedule", f"engine.{method}", site_loc),
            f"engine.{method}(..., site=...) inserts an event at that site",
        )
        action_idx = SCHED_METHODS[method]
        if action_idx >= len(node.args):
            return
        action = node.args[action_idx]

        payload: Optional[ast.expr] = None
        if method in ("schedule", "after"):
            if len(node.args) > 2:
                payload = node.args[2]
            for kw in node.keywords:
                if kw.arg == "payload":
                    payload = kw.value
        payload_args: Tuple[Binding, ...] = ()
        if payload is not None and not (
            isinstance(payload, ast.Constant) and payload.value is None
        ):
            payload_args = (self.binding_of(payload, site_name),)

        # `self._method` callback
        self_attr = self._self_attr(action)
        if self_attr is not None and isinstance(action, ast.Attribute):
            self.scheds.append(
                SchedEdge(
                    ("self", self_attr),
                    node.lineno,
                    site_loc,
                    payload_args,
                    note=f"engine.{method} -> self.{self_attr}",
                )
            )
            return
        # generator / pre-bound call: engine.process(self._proc(pe), ...)
        if (
            isinstance(action, ast.Call)
            and isinstance(action.func, ast.Attribute)
            and self._self_attr(action.func) is not None
        ):
            meth = action.func.attr
            self.scheds.append(
                SchedEdge(
                    ("self", meth),
                    node.lineno,
                    site_loc,
                    tuple(self.binding_of(a, site_name) for a in action.args),
                    tuple(
                        (kw.arg, self.binding_of(kw.value, site_name))
                        for kw in action.keywords
                        if kw.arg
                    ),
                    note=f"engine.{method} -> self.{meth}(...)",
                )
            )
            return
        # lambda callback — extract inline as a synthetic summary whose
        # env rebinds the site name (and site-valued defaults) to ACTING
        if isinstance(action, ast.Lambda):
            self._synthetic_lambda(action, node.lineno, site_loc, site_name, payload_args)
            return
        # a local `def` closure scheduled by name
        if isinstance(action, ast.Name) and action.id in self.nested:
            self._synthetic_def(
                self.nested[action.id], node.lineno, site_loc, site_name
            )
            return
        # module-level function
        if isinstance(action, ast.Name):
            self.scheds.append(
                SchedEdge(
                    ("func", action.id),
                    node.lineno,
                    site_loc,
                    payload_args,
                    note=f"engine.{method} -> {action.id}",
                )
            )

    def _pass_through(self) -> Tuple[Tuple[str, Binding], ...]:
        """Identity bindings: the synthetic shares this function's params."""
        return tuple((p, param_loc(p)) for p in self.s.params)

    def _synthetic_env(self, site_name: Optional[str]) -> Dict[str, Loc]:
        env = dict(self.env)
        if site_name is not None:
            env[site_name] = ACTING
        return env

    def _synthetic_lambda(
        self,
        node: ast.Lambda,
        line: int,
        site_loc: Loc,
        site_name: Optional[str],
        payload_args: Tuple[Binding, ...],
    ) -> None:
        qual = f"{self.s.qual}.<lambda:{line}>"
        synthetic = Summary(qual, self.s.rel, line, self.s.owner, self.s.params)
        env = self._synthetic_env(site_name)
        lam_args = node.args
        defaults = lam_args.defaults
        positional = lam_args.args
        for i, arg in enumerate(positional):
            d = i - (len(positional) - len(defaults))
            if 0 <= d < len(defaults):
                env[arg.arg] = self._sched_loc(defaults[d], site_name)
            elif payload_args and i == 0 and not isinstance(
                payload_args[0], dict
            ):
                env[arg.arg] = payload_args[0]  # action(payload)
            else:
                env[arg.arg] = OTHER
        sub = _Extractor(
            synthetic, env, set(self.mach), set(self.eng), self.sets,
            self.self_name,
        )
        sub.nested = dict(self.nested)
        sub.expr(node.body)
        sub.finish()
        self.synthetics.append(synthetic)
        self.synthetics.extend(synthetic.synthetics)
        self.scheds.append(
            SchedEdge(
                ("synthetic", synthetic.key),
                line,
                site_loc,
                kwargs=self._pass_through(),
                note="scheduled lambda",
            )
        )

    def _synthetic_def(
        self,
        node: ast.FunctionDef,
        line: int,
        site_loc: Loc,
        site_name: Optional[str],
    ) -> None:
        qual = f"{self.s.qual}.<{node.name}:{node.lineno}>"
        synthetic = Summary(qual, self.s.rel, node.lineno, self.s.owner, self.s.params)
        env = self._synthetic_env(site_name)
        for arg in node.args.args:
            env[arg.arg] = OTHER
        sub = _Extractor(
            synthetic, env, set(self.mach), set(self.eng),
            _LocalSets(node), self.self_name,
        )
        sub.nested = dict(self.nested)
        sub.block(node.body)
        sub.finish()
        self.synthetics.append(synthetic)
        self.synthetics.extend(synthetic.synthetics)
        self.scheds.append(
            SchedEdge(
                ("synthetic", synthetic.key),
                line,
                site_loc,
                kwargs=self._pass_through(),
                note=f"scheduled closure {node.name}",
            )
        )

    def _lambda_inline(self, node: ast.Lambda) -> None:
        """A lambda in a non-schedule position (e.g. a ``min`` key):
        its body runs synchronously with unknown bindings."""
        saved = dict(self.env)
        for arg in node.args.args:
            self.env[arg.arg] = OTHER
        self.expr(node.body)
        self.env = saved

    def finish(self) -> None:
        self.s.calls = tuple(self.calls)
        self.s.scheds = tuple(self.scheds)
        self.s.synthetics = tuple(self.synthetics)


def extract(
    node: ast.FunctionDef, rel: str, owner: Optional[str]
) -> Summary:
    """Extract the :class:`Summary` of one function definition."""
    args = node.args
    names = [a.arg for a in args.args]
    self_name: Optional[str] = None
    if owner is not None and names and names[0] in ("self", "cls"):
        self_name = names[0]
        names = names[1:]
    names += [a.arg for a in args.kwonlyargs]
    params = tuple(names)
    qual = f"{owner}.{node.name}" if owner else node.name
    summary = Summary(qual, rel, node.lineno, owner, params)
    env: Dict[str, Loc] = {p: param_loc(p) for p in params}
    extractor = _Extractor(
        summary, env, set(), set(), _LocalSets(node), self_name
    )
    extractor.block(node.body)
    extractor.finish()
    return summary
