"""Call-graph tables and the interprocedural effect fixpoint.

:class:`FlowProject` is the whole-project view: every class and
module-level function in the kernel packages (``repro/core``,
``repro/oracle``, ``repro/pdes``, ``repro/topology``), a name-based MRO
per class, and lazily extracted :class:`~.model.Summary` objects.

The central operation is :meth:`FlowProject.closures_for`: given an
analysis class (virtual dispatch context — ``self.f()`` resolves
through *that* class's MRO, so a hook inherited from ``CWN`` is
analyzed with ``AdaptiveCWN``'s overrides in force) and a set of root
functions, it computes each reachable function's **closure**: the base
effects plus every callee effect, with parameterized localities
substituted through each call edge's argument bindings, iterated to a
fixpoint.  Schedule edges are *not* inlined — the callback's effects do
not happen inside the scheduling function — they are lifted alongside,
so entry-point analysis (:mod:`.strategies`) can instantiate each
scheduled callback with the acting PE its site binds.

Termination: the locality domain is finite (acting / other / global /
param×name×index over program-bounded names), effects are a growing
set in that finite domain, and traces only ever shrink.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..context import ProjectIndex
from .extract import extract
from .model import (
    Bindings,
    Binding,
    Effect,
    Step,
    Summary,
    Trace,
    bind_call,
    join_trace,
    substitute_binding,
    substitute_loc,
)

__all__ = ["Closure", "FlowProject", "ResolvedSched", "SCOPE"]

#: package-relative prefixes the flow engine builds its tables over
SCOPE: Tuple[str, ...] = (
    "repro/core/",
    "repro/oracle/",
    "repro/pdes/",
    "repro/topology/",
)


@dataclass(frozen=True)
class ResolvedSched:
    """A schedule edge with its callback resolved to a summary key."""

    target: str
    site_loc: Tuple[object, ...]
    #: callee parameter -> binding (in the *owning* function's space)
    bindings: Tuple[Tuple[str, object], ...]
    trace: Trace

    @staticmethod
    def canon_binding(binding: Binding) -> object:
        if isinstance(binding, dict):
            return tuple(sorted(binding.items()))
        return binding

    @classmethod
    def make(
        cls,
        target: str,
        site_loc: Tuple[object, ...],
        bindings: Bindings,
        trace: Trace,
    ) -> "ResolvedSched":
        items = tuple(
            sorted((k, cls.canon_binding(v)) for k, v in bindings.items())
        )
        return cls(target, site_loc, items, trace)

    def as_bindings(self) -> Bindings:
        out: Bindings = {}
        for name, value in self.bindings:
            if isinstance(value, tuple) and value and isinstance(value[0], tuple):
                out[name] = dict(value)  # re-inflate per-element bindings
            else:
                out[name] = value  # type: ignore[assignment]
        return out

    def identity(self) -> Tuple[object, ...]:
        return (self.target, self.site_loc, self.bindings)


@dataclass
class Closure:
    """One function's interprocedural facts (parameterized)."""

    effects: Dict[Effect, Trace] = field(default_factory=dict)
    scheds: Dict[Tuple[object, ...], ResolvedSched] = field(default_factory=dict)

    def add_effect(self, effect: Effect, trace: Trace) -> bool:
        old = self.effects.get(effect)
        if old is None:
            self.effects[effect] = trace
            return True
        if len(trace) < len(old):
            self.effects[effect] = trace
        return False

    def add_sched(self, sched: ResolvedSched) -> bool:
        key = sched.identity()
        if key not in self.scheds:
            self.scheds[key] = sched
            return True
        return False


class FlowProject:
    """Tables + summary/closure caches over one :class:`ProjectIndex`."""

    def __init__(
        self, index: ProjectIndex, prefixes: Tuple[str, ...] = SCOPE
    ) -> None:
        self.index = index
        #: class name -> base-class names (first definition wins)
        self.class_bases: Dict[str, Tuple[str, ...]] = {}
        #: (class name, method name) -> (node, rel)
        self.methods: Dict[Tuple[str, str], Tuple[ast.FunctionDef, str]] = {}
        #: module-level function name -> [(node, rel), ...]
        self.functions: Dict[str, List[Tuple[ast.FunctionDef, str]]] = {}
        self._summaries: Dict[str, Summary] = {}
        self._synthetic: Dict[str, Summary] = {}
        self._mro: Dict[str, Tuple[str, ...]] = {}
        self._closures: Dict[Tuple[str, str], Closure] = {}
        for rel, ctx in sorted(index.files.items()):
            if not rel.startswith(prefixes):
                continue
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    self.functions.setdefault(stmt.name, []).append((stmt, rel))
                elif isinstance(stmt, ast.ClassDef):
                    if stmt.name not in self.class_bases:
                        bases = []
                        for b in stmt.bases:
                            if isinstance(b, ast.Name):
                                bases.append(b.id)
                            elif isinstance(b, ast.Attribute):
                                bases.append(b.attr)
                        self.class_bases[stmt.name] = tuple(bases)
                    for sub in stmt.body:
                        if isinstance(sub, ast.FunctionDef):
                            self.methods.setdefault(
                                (stmt.name, sub.name), (sub, rel)
                            )

    # -- resolution ----------------------------------------------------------

    def mro(self, cls: str) -> Tuple[str, ...]:
        """Name-based linearization (DFS, duplicates dropped)."""
        cached = self._mro.get(cls)
        if cached is not None:
            return cached
        out: List[str] = []

        def visit(name: str, seen: Set[str]) -> None:
            if name in seen:
                return
            seen.add(name)
            if name not in out:
                out.append(name)
            for base in self.class_bases.get(name, ()):
                visit(base, seen)

        visit(cls, set())
        self._mro[cls] = tuple(out)
        return self._mro[cls]

    def summary(self, node: ast.FunctionDef, rel: str, owner: Optional[str]) -> Summary:
        qual = f"{owner}.{node.name}" if owner else node.name
        key = f"{rel}:{qual}"
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        summary = extract(node, rel, owner)
        self._summaries[key] = summary
        for synthetic in summary.synthetics:
            self._synthetic[synthetic.key] = synthetic
        return summary

    def resolve_method(self, ctx_cls: str, meth: str) -> Optional[Summary]:
        for cls in self.mro(ctx_cls):
            entry = self.methods.get((cls, meth))
            if entry is not None:
                node, rel = entry
                return self.summary(node, rel, cls)
        return None

    def resolve_super(
        self, ctx_cls: str, owner: Optional[str], meth: str
    ) -> Optional[Summary]:
        chain = self.mro(ctx_cls)
        start = 0
        if owner in chain:
            start = chain.index(owner) + 1
        for cls in chain[start:]:
            entry = self.methods.get((cls, meth))
            if entry is not None:
                node, rel = entry
                return self.summary(node, rel, cls)
        return None

    def resolve_edge(
        self, ctx_cls: str, owner: Optional[str], target: Tuple[str, str]
    ) -> List[Summary]:
        kind, name = target
        if kind == "self":
            found = self.resolve_method(ctx_cls, name)
            return [found] if found is not None else []
        if kind == "super":
            found = self.resolve_super(ctx_cls, owner, name)
            return [found] if found is not None else []
        if kind == "func":
            return [
                self.summary(node, rel, None)
                for node, rel in self.functions.get(name, ())
            ]
        if kind == "synthetic":
            found = self._synthetic.get(name)
            return [found] if found is not None else []
        return []

    def summary_by_key(self, key: str) -> Optional[Summary]:
        return self._summaries.get(key) or self._synthetic.get(key)

    # -- the fixpoint --------------------------------------------------------

    def closures_for(
        self, ctx_cls: str, roots: Sequence[Summary]
    ) -> Dict[str, Closure]:
        """Closures for ``roots`` and everything they reach (memoized)."""
        # reachable set, stopping at already-final closures
        reach: Dict[str, Summary] = {}
        frontier: List[Summary] = list(roots)
        while frontier:
            s = frontier.pop()
            if s.key in reach or (ctx_cls, s.key) in self._closures:
                continue
            reach[s.key] = s
            for edge in s.calls:
                frontier.extend(self.resolve_edge(ctx_cls, s.owner, edge.target))
            for sched in s.scheds:
                frontier.extend(self.resolve_edge(ctx_cls, s.owner, sched.target))

        work: Dict[str, Closure] = {}
        for key, s in reach.items():
            closure = Closure(effects=dict(s.effects))
            for sched in s.scheds:
                for target in self.resolve_edge(ctx_cls, s.owner, sched.target):
                    bindings = bind_call(target.params, sched.args, sched.kwargs)
                    closure.add_sched(
                        ResolvedSched.make(
                            target.key,
                            sched.site_loc,
                            bindings,
                            (
                                Step(
                                    s.qual,
                                    s.rel,
                                    sched.line,
                                    sched.note or f"schedules {target.qual}",
                                ),
                            ),
                        )
                    )
            work[key] = closure

        def closure_of(key: str) -> Optional[Closure]:
            return work.get(key) or self._closures.get((ctx_cls, key))

        changed = True
        passes = 0
        while changed and passes < 100:
            changed = False
            passes += 1
            for key, s in reach.items():
                mine = work[key]
                for edge in s.calls:
                    for target in self.resolve_edge(ctx_cls, s.owner, edge.target):
                        theirs = closure_of(target.key)
                        if theirs is None or theirs is mine:
                            continue
                        bindings = bind_call(target.params, edge.args, edge.kwargs)
                        step = Step(
                            s.qual, s.rel, edge.line,
                            edge.note or f"calls {target.qual}",
                        )
                        for effect, trace in list(theirs.effects.items()):
                            lifted = Effect(
                                effect.kind,
                                effect.what,
                                substitute_loc(effect.loc, bindings),
                            )
                            if mine.add_effect(lifted, join_trace(step, trace)):
                                changed = True
                        for sched in list(theirs.scheds.values()):
                            inner = sched.as_bindings()
                            lifted_sched = ResolvedSched.make(
                                sched.target,
                                substitute_loc(sched.site_loc, bindings),
                                {
                                    p: substitute_binding(v, bindings)
                                    for p, v in inner.items()
                                },
                                join_trace(step, sched.trace),
                            )
                            if mine.add_sched(lifted_sched):
                                changed = True

        for key, closure in work.items():
            self._closures[(ctx_cls, key)] = closure
        return {
            key: self._closures[(ctx_cls, key)]
            for key in set(reach) | {r.key for r in roots}
            if (ctx_cls, key) in self._closures
        }

    def closure(self, ctx_cls: str, summary: Summary) -> Closure:
        return self.closures_for(ctx_cls, [summary])[summary.key]


def flow_for(index: ProjectIndex) -> FlowProject:
    """The (cached) :class:`FlowProject` of one lint pass's index."""
    cached = getattr(index, "_flow_project", None)
    if isinstance(cached, FlowProject):
        return cached
    project = FlowProject(index)
    index._flow_project = project  # type: ignore[attr-defined]
    return project


def iter_scope_files(index: ProjectIndex, prefixes: Iterable[str]) -> Iterable:
    pref = tuple(prefixes)
    for rel in sorted(index.files):
        if rel.startswith(pref):
            yield index.files[rel]
