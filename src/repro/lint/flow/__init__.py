"""``repro.lint.flow`` — interprocedural effect inference.

The flow engine turns the repo's central correctness claim — *a
strategy declared* ``shardable = True`` *really is shard-local* — from
a reviewed convention into a proof obligation.  It builds a call graph
over the kernel packages, extracts per-function effect summaries
(machine-state reads/writes, RNG draws, wall-clock reads, ``stats``
counter mutations, event scheduling, set-iteration order taint) with
*parameterized localities*, propagates them to an interprocedural
fixpoint, and instantiates every strategy entry point (hooks plus
scheduled callbacks) with its acting PE.

Layers (each its own module):

* :mod:`.model` — effects, localities, summaries, traces;
* :mod:`.extract` — intraprocedural extraction (the Machine primitive
  table, scheduling-site semantics, per-PE vs. strategy-global state);
* :mod:`.project` — call-graph tables, MRO resolution, the fixpoint;
* :mod:`.strategies` — entry-point instantiation and the shardability
  verdict;
* :mod:`.taint` — determinism taint and set-returning-helper summaries.

Three lint rules sit on top (``shardable-contract``,
``determinism-taint``, ``helper-set-iteration``), and
:func:`verify_strategy` gives the PDES coordinator a runtime
cross-check (``check_shardable(..., verify=True)``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from .model import ACTING, Effect, GLOBAL, Loc, OTHER, Step, Summary, Trace
from .project import Closure, FlowProject, flow_for
from .strategies import (
    HOOKS,
    PREAMBLE,
    StrategyReport,
    Violation,
    analyze_strategy,
    discover_strategies,
    logged_counters,
)

__all__ = [
    "ACTING",
    "Closure",
    "Effect",
    "FlowProject",
    "GLOBAL",
    "HOOKS",
    "Loc",
    "OTHER",
    "PREAMBLE",
    "Step",
    "StrategyReport",
    "Summary",
    "Trace",
    "Violation",
    "analyze_strategy",
    "discover_strategies",
    "flow_for",
    "logged_counters",
    "strategy_reports",
    "verify_strategy",
]


def strategy_reports(index: "object") -> "dict[str, StrategyReport]":
    """Analyze every registered strategy (cached on the index)."""
    from ..context import ProjectIndex

    assert isinstance(index, ProjectIndex)
    cached = getattr(index, "_strategy_reports", None)
    if isinstance(cached, dict):
        return cached
    project = flow_for(index)
    reports: "dict[str, StrategyReport]" = {}
    for name, cls, _rel, _line in discover_strategies(index):
        reports[name] = analyze_strategy(project, index, name, cls)
    index._strategy_reports = reports  # type: ignore[attr-defined]
    return reports


_VERIFY_CACHE: "dict[str, StrategyReport] | None" = None


def _installed_reports() -> "dict[str, StrategyReport]":
    """Strategy reports for the *installed* package (module-cached)."""
    global _VERIFY_CACHE
    if _VERIFY_CACHE is None:
        from ..context import FileContext, ProjectIndex
        from ..engine import collect_files, default_root

        index = ProjectIndex()
        for path in collect_files([default_root()]):
            try:
                index.add(FileContext.parse(Path(path)))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue
        _VERIFY_CACHE = strategy_reports(index)
    return _VERIFY_CACHE


def verify_strategy(class_name: str) -> Optional[StrategyReport]:
    """The inferred report for a strategy *class* name (or None).

    Used by ``check_shardable(..., verify=True)`` to cross-check the
    declared ``shardable`` flag against the static inference before
    committing to a sharded run.
    """
    for report in _installed_reports().values():
        if report.cls == class_name:
            return report
    return None
