"""Determinism taint and return-type (set) summaries.

Two lighter companions to the effect engine, over the same function
tables:

**Determinism taint** tracks values *derived from* nondeterministic
sources — wall-clock reads, module-state RNG draws, hash-order set
iteration — through local assignments and function returns, and reports
them when they reach a determinism-critical sink: a ``SimResult(...)``
field, an undo-logged ``stats.<counter>`` write, or a cache-key hash.
Each finding carries the full propagation chain for ``--explain``.

**Return-set summaries** close the ``unordered-iteration`` rule's
documented blind spot: a helper that *returns* a set defeats that
rule's local type inference, so ``for x in neighbors_of(n)`` iterates
in hash order unflagged.  A small fixpoint marks every function whose
return value may be a set (directly, or by returning another
set-returning call), and the ``helper-set-iteration`` rule flags raw
iteration of such calls in kernel scope.

Both analyses resolve ``self.m()`` through the *defining* class's MRO
(no per-subclass contexts — precision strategies need, taint does not).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..context import FileContext, ProjectIndex
from .extract import CLOCK_CALLS, _dotted
from .model import Step, Trace, join_trace
from .project import FlowProject, flow_for

__all__ = [
    "FuncRef",
    "TaintFinding",
    "TaintAnalysis",
    "returns_set_keys",
    "set_returning_call",
]

#: hash constructors / digest helpers that make a cache key
_HASH_CALLS = {
    "sha256",
    "sha1",
    "md5",
    "blake2b",
    "blake2s",
    "content_hash",
}

#: set-returning builtins / methods (mirrors the iteration rule)
_SET_CALLS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}


def _is_clock(call: ast.Call) -> Optional[str]:
    name = _dotted(call.func)
    if name is not None and name in CLOCK_CALLS:
        return name
    return None


def _is_global_rng(call: ast.Call) -> Optional[str]:
    name = _dotted(call.func)
    if name is None:
        return None
    if name.startswith("random.") or name.startswith("np.random.") or name.startswith(
        "numpy.random."
    ):
        return name
    return None


#: (rel, owner-or-None, function name) — one analyzed function
FuncRef = Tuple[str, Optional[str], str]


def _functions(ctx: FileContext) -> Iterator[Tuple[Optional[str], ast.FunctionDef]]:
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.FunctionDef):
            yield None, stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    yield stmt.name, sub


class _LocalSets:
    """Set-typed local names (the iteration rule's two-pass inference)."""

    def __init__(self, scope: ast.AST) -> None:
        self.names: Set[str] = set()
        for _ in range(2):
            for node in ast.walk(scope):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                if isinstance(target, ast.Name) and value is not None:
                    if self.is_set(value):
                        self.names.add(target.id)
                    else:
                        self.names.discard(target.id)

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CALLS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self.is_set(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


def _call_ref(
    project: FlowProject, ctx_rel: str, owner: Optional[str], call: ast.Call
) -> List[FuncRef]:
    """Resolve a call expression to analyzed-function references."""
    func = call.func
    if isinstance(func, ast.Name):
        return [
            (rel, None, func.id) for _, rel in project.functions.get(func.id, ())
        ]
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and owner is not None
    ):
        for cls in project.mro(owner):
            entry = project.methods.get((cls, func.attr))
            if entry is not None:
                _, rel = entry
                return [(rel, cls, func.attr)]
    return []


# -- return-set summaries ----------------------------------------------------


def returns_set_keys(project: FlowProject) -> Set[FuncRef]:
    """Every analyzed function whose return value may be a set."""
    cached = getattr(project, "_returns_set", None)
    if isinstance(cached, set):
        return cached

    base: Set[FuncRef] = set()
    deps: Dict[FuncRef, Set[FuncRef]] = {}
    for rel in sorted(project.index.files):
        ctx = project.index.files[rel]
        for owner, node in _functions(ctx):
            ref: FuncRef = (ctx.rel, owner, node.name)
            sets = _LocalSets(node)
            name_from_call: Dict[str, List[FuncRef]] = {}
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    if isinstance(target, ast.Name) and isinstance(
                        sub.value, ast.Call
                    ):
                        refs = _call_ref(project, ctx.rel, owner, sub.value)
                        if refs:
                            name_from_call[target.id] = refs
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Return) or sub.value is None:
                    continue
                value = sub.value
                if sets.is_set(value):
                    base.add(ref)
                elif isinstance(value, ast.Call):
                    deps.setdefault(ref, set()).update(
                        _call_ref(project, ctx.rel, owner, value)
                    )
                elif isinstance(value, ast.Name) and value.id in name_from_call:
                    deps.setdefault(ref, set()).update(name_from_call[value.id])

    out = set(base)
    changed = True
    while changed:
        changed = False
        for ref, targets in deps.items():
            if ref not in out and targets & out:
                out.add(ref)
                changed = True
    project._returns_set = out  # type: ignore[attr-defined]
    return out


def set_returning_call(
    index: ProjectIndex,
    ctx: FileContext,
    owner: Optional[str],
    call: ast.Call,
) -> Optional[FuncRef]:
    """The set-returning function this call resolves to (or None)."""
    project = flow_for(index)
    known = returns_set_keys(project)
    for ref in _call_ref(project, ctx.rel, owner, call):
        if ref in known:
            return ref
    return None


# -- determinism taint -------------------------------------------------------


@dataclass(frozen=True)
class TaintFinding:
    """A nondeterministic value reaching a determinism-critical sink."""

    rel: str
    line: int
    col: int
    sink: str
    source: str
    chain: Trace


class TaintAnalysis:
    """Module-wide taint pass (see the module docstring)."""

    def __init__(self, project: FlowProject, scope: Tuple[str, ...]) -> None:
        self.project = project
        self.scope = scope
        #: FuncRef -> source chain when the return value may be tainted
        self.tainted_returns: Dict[FuncRef, Trace] = {}
        self._compute_returns()

    # A function's return is tainted when it returns a source
    # expression, a tainted local, or a tainted-returning call.
    def _compute_returns(self) -> None:
        changed = True
        passes = 0
        while changed and passes < 20:
            changed = False
            passes += 1
            for rel in sorted(self.project.index.files):
                if not rel.startswith(self.scope):
                    continue
                ctx = self.project.index.files[rel]
                for owner, node in _functions(ctx):
                    ref: FuncRef = (ctx.rel, owner, node.name)
                    if ref in self.tainted_returns:
                        continue
                    env = self._local_taint(ctx, owner, node)
                    for sub in ast.walk(node):
                        if not isinstance(sub, ast.Return) or sub.value is None:
                            continue
                        chain = self._expr_taint(ctx, owner, node, env, sub.value)
                        if chain is not None:
                            step = Step(
                                self._qual(owner, node.name),
                                ctx.rel,
                                sub.lineno,
                                "returned from here",
                            )
                            self.tainted_returns[ref] = join_trace(step, chain)
                            changed = True
                            break

    def _qual(self, owner: Optional[str], name: str) -> str:
        return f"{owner}.{name}" if owner else name

    def _source(
        self, ctx: FileContext, node: ast.expr
    ) -> Optional[Tuple[str, Step]]:
        """A direct nondeterminism source inside this expression."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                clock = _is_clock(sub)
                if clock is not None:
                    return (
                        f"wall clock ({clock})",
                        Step("", ctx.rel, sub.lineno, f"{clock}() read here"),
                    )
                rng = _is_global_rng(sub)
                if rng is not None:
                    return (
                        f"module RNG state ({rng})",
                        Step("", ctx.rel, sub.lineno, f"{rng}() drawn here"),
                    )
        return None

    def _local_taint(
        self, ctx: FileContext, owner: Optional[str], node: ast.FunctionDef
    ) -> Dict[str, Tuple[str, Trace]]:
        """name -> (source description, chain) for tainted locals."""
        sets = _LocalSets(node)
        env: Dict[str, Tuple[str, Trace]] = {}
        for _ in range(2):  # two passes resolve forward chains enough
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target = sub.targets[0]
                    if not isinstance(target, ast.Name):
                        continue
                    chain = self._expr_taint(ctx, owner, node, env, sub.value)
                    if chain is not None:
                        src = env.get(target.id)
                        step = Step(
                            self._qual(owner, node.name),
                            ctx.rel,
                            sub.lineno,
                            f"assigned to {target.id}",
                        )
                        desc = chain[-1].note if chain else "nondeterministic"
                        if src is None:
                            env[target.id] = (desc, join_trace(step, chain))
                    else:
                        env.pop(target.id, None)
                elif isinstance(sub, ast.AugAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    # accumulation (`parts += str(item)`) keeps and
                    # spreads taint — never clears it
                    chain = self._expr_taint(ctx, owner, node, env, sub.value)
                    if chain is not None and sub.target.id not in env:
                        step = Step(
                            self._qual(owner, node.name),
                            ctx.rel,
                            sub.lineno,
                            f"accumulated into {sub.target.id}",
                        )
                        desc = chain[-1].note if chain else "nondeterministic"
                        env[sub.target.id] = (desc, join_trace(step, chain))
                elif isinstance(sub, (ast.For, ast.AsyncFor)):
                    if sets.is_set(sub.iter) and isinstance(sub.target, ast.Name):
                        step = Step(
                            self._qual(owner, node.name),
                            ctx.rel,
                            sub.iter.lineno,
                            "bound by set iteration (hash order)",
                        )
                        env.setdefault(
                            sub.target.id, ("set iteration order", (step,))
                        )
        return env

    def _expr_taint(
        self,
        ctx: FileContext,
        owner: Optional[str],
        func: ast.FunctionDef,
        env: Dict[str, Tuple[str, Trace]],
        node: ast.expr,
    ) -> Optional[Trace]:
        """The taint chain of an expression (None when clean)."""
        direct = self._source(ctx, node)
        if direct is not None:
            _, step = direct
            return (step,)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in env:
                return env[sub.id][1]
            if isinstance(sub, ast.Call):
                for ref in _call_ref(self.project, ctx.rel, owner, sub):
                    chain = self.tainted_returns.get(ref)
                    if chain is not None:
                        step = Step(
                            self._qual(owner, func.name),
                            ctx.rel,
                            sub.lineno,
                            f"call to {self._qual(ref[1], ref[2])} returns a "
                            f"tainted value",
                        )
                        return join_trace(step, chain)
        return None

    # -- sinks ---------------------------------------------------------------

    def findings(self, logged: Optional[Set[str]]) -> List[TaintFinding]:
        out: List[TaintFinding] = []
        for rel in sorted(self.project.index.files):
            if not rel.startswith(self.scope):
                continue
            ctx = self.project.index.files[rel]
            for owner, node in _functions(ctx):
                env = self._local_taint(ctx, owner, node)
                for sub in ast.walk(node):
                    out.extend(
                        self._check_sinks(ctx, owner, node, env, sub, logged)
                    )
        out.sort(key=lambda f: (f.rel, f.line, f.col, f.sink))
        return out

    def _check_sinks(
        self,
        ctx: FileContext,
        owner: Optional[str],
        func: ast.FunctionDef,
        env: Dict[str, Tuple[str, Trace]],
        node: ast.AST,
        logged: Optional[Set[str]],
    ) -> Iterator[TaintFinding]:
        # sink 1: SimResult(...) fields
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            last = name.rsplit(".", 1)[-1] if name else None
            if last == "SimResult":
                for kw in node.keywords:
                    chain = self._expr_taint(ctx, owner, func, env, kw.value)
                    if chain is not None:
                        yield TaintFinding(
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            f"SimResult field {kw.arg!r}",
                            chain[-1].note,
                            chain,
                        )
                for arg in node.args:
                    chain = self._expr_taint(ctx, owner, func, env, arg)
                    if chain is not None:
                        yield TaintFinding(
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            "SimResult field",
                            chain[-1].note,
                            chain,
                        )
            # sink 3: cache-key hashes
            elif last in _HASH_CALLS:
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    chain = self._expr_taint(ctx, owner, func, env, arg)
                    if chain is not None:
                        yield TaintFinding(
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            f"cache key ({last})",
                            chain[-1].note,
                            chain,
                        )
        # sink 2: undo-logged stats counters
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                value = target.value
                is_stats = (
                    isinstance(value, ast.Name) and value.id == "stats"
                ) or (isinstance(value, ast.Attribute) and value.attr == "stats")
                if not is_stats:
                    continue
                if logged is not None and target.attr not in logged:
                    continue
                chain = self._expr_taint(ctx, owner, func, env, node.value)
                if chain is not None:
                    yield TaintFinding(
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        f"undo-logged counter stats.{target.attr}",
                        chain[-1].note,
                        chain,
                    )
