"""Plots 11-13 — utilization vs time, Fibonacci on the 100-PE DLM.

The paper's diagnostic traces: CWN's fast rise to near-full utilization
followed by sag (no redistribution) and, on the largest problem, an
extended tail; GM's slower ramp but steadier plateau.  Asserts the
rise-time claim quantitatively.
"""

from __future__ import annotations

from repro.experiments.scale import full_scale
from repro.experiments.timeseries import render_timeseries, rise_time, run_timeseries
from repro.topology import paper_dlm


def test_plots_11_to_13_fib_timeseries_dlm(benchmark, save_artifact, save_svg):
    full = full_scale()
    sizes = (18, 15, 9) if full else (13, 11, 9)
    topo = paper_dlm(100)

    def run_all():
        return [(n, run_timeseries(n, topo, seed=1)) for n in sizes]

    studies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "plots_timeseries_dlm",
        "\n\n".join(
            render_timeseries(study, plot_no)
            for plot_no, (_n, study) in zip((11, 12, 13), studies)
        ),
    )
    for plot_no, (_n, study) in zip((11, 12, 13), studies):
        save_svg(
            f"plot{plot_no}_timeseries_dlm",
            study.series,
            title=f"Plot {plot_no}: {study.workload} on {study.topology}",
            x_label="time",
            y_label="% PE utilization",
            y_max=100.0,
        )

    # "The CWN has much faster 'rise-time' than GM" — on the sizes with
    # enough work to fill 100 PEs.
    for n, study in studies:
        if n < 11:
            continue  # fib(9): 109 goals cannot meaningfully load 100 PEs
        assert rise_time(study.series["cwn"], 30.0) <= rise_time(
            study.series["gm"], 30.0
        ), f"fib({n}): CWN did not rise faster"
