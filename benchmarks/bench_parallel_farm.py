"""The simulation farm itself: serial vs farmed wall time, cache speedup.

Unlike the other benches this one measures the *harness*, not the
paper: the same batch of independent runs executed (a) serially in
process, (b) fanned out across worker processes, and (c) against a warm
content-addressed cache.  It asserts the two guarantees the experiment
modules lean on — farmed results are identical to serial, and a warm
rerun performs zero new simulations — and records the measured
speedups as an artifact.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.parallel import ResultCache, RunSpec, run_batch, run_many


def _batch(full: bool) -> list[RunSpec]:
    fib_sizes = (11, 12, 13, 14) if full else (10, 11, 12)
    seeds = range(1, 5) if full else range(1, 4)
    return [
        RunSpec(f"fib:{n}", topo, strategy, seed=seed)
        for n in fib_sizes
        for topo in ("grid:8x8", "dlm:4x8x8")
        for strategy in ("cwn", "gm")
        for seed in seeds
    ]


def test_parallel_farm_speedup(benchmark, save_artifact, tmp_path):
    specs = _batch(full_scale())
    jobs = min(4, os.cpu_count() or 1)

    t0 = time.perf_counter()
    serial = [spec.run() for spec in specs]
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    farmed = run_many(specs, jobs=jobs)
    farm_s = time.perf_counter() - t0

    for a, b in zip(farmed, serial):
        assert a.completion_time == b.completion_time
        assert np.array_equal(a.busy_time, b.busy_time)

    cache = ResultCache(tmp_path)
    t0 = time.perf_counter()
    cold = run_batch(specs, jobs=jobs, cache=cache)
    cold_s = time.perf_counter() - t0
    assert cold.simulated == len(specs)

    warm_report = benchmark.pedantic(
        lambda: run_batch(specs, jobs=jobs, cache=cache),
        rounds=1,
        iterations=1,
    )
    t0 = time.perf_counter()
    warm2 = run_batch(specs, jobs=jobs, cache=cache)
    warm_s = time.perf_counter() - t0

    # The farm's contract: a warm cache answers everything.
    assert warm_report.hits == len(specs) and warm_report.simulated == 0
    assert warm2.hits == len(specs) and warm2.simulated == 0

    rows = [
        ["runs", len(specs)],
        ["worker processes", jobs],
        ["serial", f"{serial_s:.2f}s"],
        [f"farmed (jobs={jobs})", f"{farm_s:.2f}s"],
        ["farm speedup", f"{serial_s / farm_s:.2f}x"],
        ["cold batch (+cache writes)", f"{cold_s:.2f}s"],
        ["warm batch (all hits)", f"{warm_s:.2f}s"],
        ["cache speedup vs serial", f"{serial_s / warm_s:.0f}x"],
        ["warm hit rate", f"{warm2.hits}/{len(specs)}"],
    ]
    save_artifact(
        "parallel_farm",
        format_table(["quantity", "value"], rows, title="Simulation farm (serial vs farmed vs cached)"),
    )
