"""Communication locality — the scalability argument behind CWN's radius.

Section 2.1: global communication "is not scalable... Luckily, in the
tree structured computation domains it is possible to avoid global
communication as the communication is almost exclusively between parent
and child tasks.  Therefore this scheme restricts a child task to be
within a fixed radius from its parent."

This bench measures exactly that: the route length of parent-child
response traffic under CWN (radius-bounded placement), GM (locality by
default), and uniform random placement (the global scheme the argument
rejects).  Asserts CWN's responses stay local while random placement's
scale with the network diameter.
"""

from __future__ import annotations

from repro.core import RandomPlacement, paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import paper_grid
from repro.workload import Fibonacci


def test_response_locality(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = paper_grid(100)

    def run_all():
        rows = []
        for name, strategy in (
            ("cwn", paper_cwn("grid")),
            ("gm", paper_gm("grid")),
            ("random (global)", RandomPlacement()),
        ):
            res = simulate(Fibonacci(fib_n), topo, strategy, seed=1)
            rows.append(
                (
                    name,
                    res.mean_response_distance,
                    res.remote_response_fraction,
                    res.speedup,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "locality",
        format_table(
            ["strategy", "mean response route", "remote fraction", "speedup"],
            rows,
            title=f"Parent-child communication locality: fib({fib_n}) on grid 10x10",
        ),
    )

    dist = {name: row[0] for name, *row in rows}
    remote = {name: row[1] for name, *row in rows}
    # CWN bounds parent-child distance: well under the global scheme's.
    assert dist["cwn"] < dist["random (global)"]
    # GM keeps most goals at their parents: the fewest remote responses.
    assert remote["gm"] < remote["cwn"] < remote["random (global)"] + 0.05
    # Nothing exceeds the network diameter (sanity).
    assert all(d <= topo.diameter for d in dist.values())
