"""Plots 1-5 — dc utilization vs problem size on the double-lattice-meshes.

One curve pair (CWN, GM) per DLM machine: (5,20,20), (4,16,16),
(5,10,10), (4,8,8), (5,5,5) at full scale.  Asserts the paper's DLM
findings: "On the double lattice-meshes also CWN consistently performs
better than the GM" — consistently, but by smaller margins than on the
grids (the DLM's small diameter helps GM).
"""

from __future__ import annotations

from repro.experiments.scale import full_scale, pe_counts
from repro.experiments.utilization_curves import render_curve, run_curve
from repro.topology import paper_dlm

PLOT_BY_PES = {400: 1, 256: 2, 100: 3, 64: 4, 25: 5}


def test_plots_1_to_5_dc_on_dlm(benchmark, save_artifact, save_svg):
    full = full_scale()

    def run_all():
        return [
            (PLOT_BY_PES[n], run_curve(paper_dlm(n), kind="dc", full=full, seed=1))
            for n in sorted(pe_counts(full), reverse=True)
        ]

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "plots_dc_dlm",
        "\n\n".join(render_curve(curve, plot_no) for plot_no, curve in curves),
    )
    for plot_no, curve in curves:
        save_svg(
            f"plot{plot_no:02d}_dc_dlm",
            curve.series,
            title=f"Plot {plot_no}: dc on {curve.topology}",
            x_label="goals",
            y_label="% PE utilization",
            y_max=100.0,
        )

    for _plot_no, curve in curves:
        cwn = dict(curve.series["cwn"])
        gm = dict(curve.series["gm"])
        wins = sum(cwn[g] > gm[g] for g in cwn)
        assert wins >= 0.6 * len(cwn), f"{curve.topology}: CWN won only {wins}/{len(cwn)}"
