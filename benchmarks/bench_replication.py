"""Seed-robustness of the central claim.

The paper reports single simulation runs; our tie-breaking is seeded, so
this bench reruns a representative Table 2 cell across seeds and asserts
that the 95% confidence interval of the CWN/GM speedup ratio excludes
1.0 — i.e. "CWN wins" is statistically solid, not a lucky seed.
"""

from __future__ import annotations

from repro.experiments.replication import replicate_pair
from repro.experiments.scale import full_scale
from repro.topology import paper_grid
from repro.workload import Fibonacci


def test_replication_cwn_wins_across_seeds(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    seeds = range(1, 11 if full_scale() else 7)

    rep = benchmark.pedantic(
        lambda: replicate_pair(Fibonacci(fib_n), paper_grid(64), seeds=seeds),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "replication",
        f"CWN/GM speedup ratio, fib({fib_n}) on grid 8x8, seeds {list(seeds)}:\n{rep}",
    )

    lo, _hi = rep.ci95
    assert lo > 1.0, f"CI does not exclude a tie: {rep}"
    assert rep.mean > 1.1, rep
