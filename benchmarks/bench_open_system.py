"""Open-system behaviour under Poisson query arrivals.

The paper studies closed runs: one computation, start to finish.  Real
symbolic-computation servers (§1's motivating systems) face a *stream*
of queries.  This bench offers a Poisson stream of fib queries at
increasing load and measures per-query response times under CWN, GM and
work stealing — the regime where GM's redistribution ability (its one
observed strength, Plots 11-12) could plausibly pay off, because new
queries keep arriving at single PEs while old ones drain.

Asserted: response times grow with offered load for every strategy
(basic queueing sanity); CWN's mean response time stays at or below
GM's at every load point (the paper's conclusion extends to the open
system); all queries complete correctly.
"""

from __future__ import annotations

import random

from repro.core import make_strategy
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.oracle.config import SimConfig
from repro.oracle.machine import Machine
from repro.topology import Grid
from repro.workload import Fibonacci

STRATEGIES = ("cwn", "gm", "stealing")


def _poisson_times(n: int, mean_gap: float, seed: int) -> list[float]:
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += rng.expovariate(1.0 / mean_gap)
        out.append(t)
    return out


def test_open_system_poisson(benchmark, save_artifact):
    full = full_scale()
    fib_n = 13 if full else 11
    n_queries = 12 if full else 8
    topo = Grid(8, 8)
    # Mean inter-arrival gaps, from light to heavy offered load.
    gaps = (3000.0, 1000.0, 300.0) if full else (1500.0, 500.0, 150.0)

    def sweep():
        rows = []
        rng = random.Random(99)
        arrival_pes = [rng.randrange(topo.n) for _ in range(n_queries)]
        for gap in gaps:
            times = _poisson_times(n_queries, gap, seed=3)
            for spec in STRATEGIES:
                machine = Machine(
                    topo,
                    Fibonacci(fib_n),
                    make_strategy(spec, family="grid"),
                    SimConfig(seed=1),
                    queries=n_queries,
                    arrival_pes=arrival_pes,
                    arrival_times=times,
                )
                res = machine.run()
                rts = res.response_times
                rows.append(
                    (
                        gap,
                        spec,
                        sum(rts) / len(rts),
                        max(rts),
                        res.utilization_percent,
                        res.result_value == [Fibonacci(fib_n).expected_result()] * n_queries,
                    )
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["mean gap", "strategy", "mean response", "max response", "util %", "correct"],
        [
            [f"{g:.0f}", s, f"{m:.0f}", f"{mx:.0f}", f"{u:.1f}", ok]
            for g, s, m, mx, u, ok in rows
        ],
    )
    save_artifact(
        "open_system",
        f"Poisson stream of {n_queries} fib({fib_n}) queries on {topo.name}:\n{table}",
    )

    assert all(ok for *_rest, ok in rows)
    by = {(g, s): m for g, s, m, _mx, _u, _ok in rows}
    for spec in STRATEGIES:
        # Heavier offered load (smaller gap) => longer mean response.
        assert by[(gaps[-1], spec)] >= by[(gaps[0], spec)] * 0.9, spec
    for gap in gaps:
        # The paper's conclusion extends to the open system.
        assert by[(gap, "cwn")] <= by[(gap, "gm")] * 1.02, (gap, by)
