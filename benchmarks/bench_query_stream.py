"""Open-system behaviour: a stream of queries arriving across the machine.

Extends the paper's closed single-query runs to sustained operation —
the regime its section 4 diagnosis (CWN cannot re-shuffle; GM can) is
really about.  Asserts both schemes stay correct under concurrent
queries, and reports makespan and per-query response times; CWN's
agility advantage persists here because fresh goal creation keeps giving
it redistribution opportunities.
"""

from __future__ import annotations

from repro.experiments.query_stream import render_stream, run_stream
from repro.experiments.scale import full_scale
from repro.topology import paper_grid
from repro.workload import Fibonacci


def test_query_stream(benchmark, save_artifact):
    fib_n = 13 if full_scale() else 11
    queries = 12 if full_scale() else 8

    results = benchmark.pedantic(
        lambda: run_stream(
            Fibonacci(fib_n), paper_grid(64), queries=queries, spacing=200.0, seed=1
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "query_stream",
        render_stream(
            results,
            header=(
                f"Query stream: {queries} x fib({fib_n}) arriving every 200 units "
                "at PEs spread over a 64-PE grid"
            ),
        ),
    )

    by_name = {r.strategy: r for r in results}
    assert all(r.results_ok for r in results), "wrong answers under concurrency"
    # Under sustained load CWN still completes the stream sooner.
    assert by_name["cwn"].makespan < by_name["gm"].makespan
    assert by_name["cwn"].mean_response < by_name["gm"].mean_response
    # Concurrency must raise utilization well above the single-query level.
    assert by_name["cwn"].utilization_percent > 50
