"""Appendix I — the hypercube experiments (plots A-1 .. A-8).

Fibonacci utilization-vs-goals curves on hypercubes of several
dimensions plus time-series traces on the largest cube.  Asserts that
the main-body conclusion carries over to hypercubes: CWN wins the bulk
of the points.
"""

from __future__ import annotations

from repro.experiments.hypercube_appendix import (
    run_hypercube_curves,
    run_hypercube_timeseries,
)
from repro.experiments.timeseries import render_timeseries
from repro.experiments.utilization_curves import render_curve


def test_appendix_hypercube_curves(benchmark, save_artifact):
    curves = benchmark.pedantic(
        lambda: run_hypercube_curves(seed=1), rounds=1, iterations=1
    )
    save_artifact(
        "appendix_hypercube_curves",
        "\n\n".join(render_curve(curve) for _dim, curve in curves),
    )

    total_wins = total_points = 0
    for _dim, curve in curves:
        cwn = [u for _, u in curve.series["cwn"]]
        gm = [u for _, u in curve.series["gm"]]
        total_wins += sum(c > g for c, g in zip(cwn, gm))
        total_points += len(cwn)
    assert total_wins >= 0.6 * total_points, f"{total_wins}/{total_points}"


def test_appendix_hypercube_timeseries(benchmark, save_artifact):
    studies = benchmark.pedantic(
        lambda: run_hypercube_timeseries(seed=1), rounds=1, iterations=1
    )
    save_artifact(
        "appendix_hypercube_timeseries",
        "\n\n".join(render_timeseries(study) for _n, study in studies),
    )
    # Largest size: CWN must reach a high utilization quickly.
    from repro.experiments.timeseries import rise_time

    _n, biggest = studies[0]
    assert rise_time(biggest.series["cwn"], 40.0) <= rise_time(
        biggest.series["gm"], 40.0
    )
