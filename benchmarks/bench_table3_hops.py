"""Table 3 — distribution of goal-message travel distances.

fib(18) on a 10x10 grid at full scale (fib(15) reduced).  Asserts the
paper's communication findings:

* CWN's mean goal distance is a multiple of GM's (paper: 3.15 vs 0.92,
  "typically thrice as much communication");
* a large share of GM's goals never leave their source PE (paper: 4068
  of 8361 at 0 hops);
* CWN's contracted goals all travel (hop 0 only for the injected root).
"""

from __future__ import annotations

from repro.experiments.hops import render_table3, run_hop_study
from repro.experiments.scale import full_scale


def test_table3_message_distance_distribution(benchmark, save_artifact):
    fib_n = 18 if full_scale() else 15
    study = benchmark.pedantic(
        lambda: run_hop_study(fib_n=fib_n, seed=1), rounds=1, iterations=1
    )
    save_artifact(
        "table3_hops",
        render_table3(study)
        + f"\n\ncommunication ratio (CWN/GM mean distance): {study.communication_ratio:.2f}",
    )

    total = sum(study.cwn.hop_histogram.values())
    assert study.communication_ratio > 1.8, study.communication_ratio
    assert study.gm.hop_histogram.get(0, 0) > 0.3 * total
    assert study.cwn.hop_histogram.get(0, 0) <= 1
    # CWN respects the radius; its histogram must not extend past it.
    assert max(study.cwn.hop_histogram) <= 9
