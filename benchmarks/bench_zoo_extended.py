"""The full strategy space — every implemented strategy, ranked.

Extends the original zoo bench with the second-wave strategies (bidding,
symmetric, central, random-walk, the GM variants) and ranks everything
by Brent quality: completion time over the greedy-scheduler reference
envelope ``T1/P + T_inf`` (1.0 = as good as any greedy scheduler with
free communication; see ``repro.validation.bounds``).

Assertions pin the structural findings:

* every distributed dynamic scheme beats keep-local;
* CWN leads all *locally informed* schemes (the paper's conclusion);
* the event-driven GM beats the periodic GM (interval latency matters)
  but still trails CWN (hoarding matters more);
* blind random-walk contracting trails CWN (load information is worth
  something);
* the centralized oracle trails CWN at this size (§1's scalability
  argument).
"""

from __future__ import annotations

from repro.core import make_strategy
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.oracle.config import CostModel
from repro.topology import Grid
from repro.validation import completion_bounds
from repro.workload import Fibonacci

SPECS = [
    "cwn", "acwn", "gm", "gm-event", "gm-batch", "threshold", "stealing",
    "symmetric", "bidding", "diffusion", "randomwalk", "central",
    "random", "roundrobin", "local",
]


def test_zoo_extended(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = Grid(8, 8)
    program = Fibonacci(fib_n)
    bounds = completion_bounds(program, CostModel(), topo.n)

    def run_zoo():
        rows = {}
        for spec in SPECS:
            res = simulate(program, topo, make_strategy(spec, family="grid"), seed=1)
            rows[spec] = (
                res.completion_time,
                bounds.quality(res.completion_time),
                res.speedup,
                res.utilization_percent,
                res.mean_goal_distance,
            )
        return rows

    rows = benchmark.pedantic(run_zoo, rounds=1, iterations=1)

    ranked = sorted(rows.items(), key=lambda kv: kv[1][0])
    table = format_table(
        ["strategy", "completion", "brent quality", "speedup", "util %", "mean hops"],
        [
            [name, f"{t:.0f}", f"{q:.2f}", f"{s:.1f}", f"{u:.1f}", f"{h:.2f}"]
            for name, (t, q, s, u, h) in ranked
        ],
    )
    save_artifact(
        "zoo_extended",
        f"All strategies, fib({fib_n}) on {topo.name} "
        f"(greedy envelope = {bounds.brent_upper:.0f}):\n{table}",
    )

    t = {name: vals[0] for name, vals in rows.items()}
    # Every distributed dynamic scheme beats no distribution at all.
    for spec in ("cwn", "gm", "stealing", "symmetric", "bidding", "randomwalk"):
        assert t[spec] < t["local"], f"{spec} lost to keep-local"
    # CWN leads the locally informed schemes.
    for spec in ("gm", "gm-event", "gm-batch", "threshold", "bidding", "randomwalk"):
        assert t["cwn"] <= t[spec], f"cwn trails {spec}"
    # Interval latency is real but not the whole story.
    assert t["gm-event"] <= t["gm"]
    assert t["cwn"] <= t["gm-event"]
    # Load information beats blind walks; distribution beats centralization.
    assert t["cwn"] < t["randomwalk"]
    assert t["cwn"] < t["central"]
