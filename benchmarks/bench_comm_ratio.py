"""Communication-ratio sensitivity — the paper's closing caveat.

"We chose a low communication to computation ratio... When the ratio is
higher, CWN may lose some of its edge."  This bench sweeps the ratio and
measures the CWN/GM speedup ratio at each point, quantifying exactly how
much edge CWN loses as communication gets expensive.
"""

from __future__ import annotations

from repro.core import paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.oracle.config import CostModel, SimConfig
from repro.topology import Grid
from repro.workload import Fibonacci

RATIOS = (0.02, 0.1, 0.3, 1.0, 3.0)


def test_comm_ratio_sensitivity(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = Grid(8, 8)

    def run_sweep():
        rows = []
        for ratio in RATIOS:
            costs = CostModel().with_comm_ratio(ratio)
            cfg = SimConfig(costs=costs, seed=1)
            cwn = simulate(Fibonacci(fib_n), topo, paper_cwn("grid"), config=cfg)
            gm = simulate(Fibonacci(fib_n), topo, paper_gm("grid"), config=cfg)
            rows.append((ratio, cwn.speedup, gm.speedup, cwn.speedup / gm.speedup))
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact(
        "comm_ratio_sensitivity",
        format_table(
            ["comm/comp ratio", "CWN speedup", "GM speedup", "CWN/GM"],
            rows,
            title=f"Sensitivity to communication cost: fib({fib_n}) on grid 8x8",
        ),
    )

    low_ratio = rows[0][3]
    high_ratio = rows[-1][3]
    # The paper's prediction: CWN loses (some of) its edge as the ratio grows.
    assert high_ratio < low_ratio, rows
    # And at the paper's chosen low ratio, CWN must clearly win.
    assert low_ratio > 1.1
