"""GM gradient-process interval sensitivity — exonerating (or convicting)
the sampling latency.

The paper notes its 20-unit interval "is fairly low [relative to run
times of 1000-23000 units], which should be an asset to [GM's]
performance", and charges nothing for running the gradient process (the
co-processor assumption).  This ablation sweeps the interval across two
orders of magnitude and adds the zero-latency limit (the event-driven
gradient of ``repro.core.gm_variants``), with CWN as the reference line.

Expected shape (asserted):

* completion time degrades monotonically-ish as the interval grows —
  wakeup latency is real;
* the zero-latency limit is the best GM can do, yet still trails CWN —
  so watermark hoarding, not sampling latency, is the paper's
  "not agile enough" diagnosis.
"""

from __future__ import annotations

from repro.core import CWN, EventGradient, GradientModel
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import Grid
from repro.workload import Fibonacci

INTERVALS = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)


def test_gm_interval_sensitivity(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = Grid(8, 8)
    program = Fibonacci(fib_n)

    def sweep():
        rows = []
        ev = simulate(program, topo, EventGradient(low_water_mark=1, high_water_mark=2), seed=1)
        rows.append(("event (interval -> 0)", ev.completion_time, ev.utilization_percent))
        for interval in INTERVALS:
            res = simulate(
                program,
                topo,
                GradientModel(low_water_mark=1, high_water_mark=2, interval=interval),
                seed=1,
            )
            rows.append((f"interval {interval:g}", res.completion_time, res.utilization_percent))
        cwn = simulate(program, topo, CWN(radius=9, horizon=2), seed=1)
        rows.append(("CWN (reference)", cwn.completion_time, cwn.utilization_percent))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["gradient process", "completion", "util %"],
        [[name, f"{t:.0f}", f"{u:.1f}"] for name, t, u in rows],
    )
    save_artifact(
        "gm_interval",
        f"GM interval ablation, fib({fib_n}) on {topo.name}:\n{table}",
    )

    times = {name: t for name, t, _u in rows}
    event_t = times["event (interval -> 0)"]
    cwn_t = times["CWN (reference)"]
    # Zero latency is GM's best case...
    assert event_t <= times["interval 20"] * 1.02
    # ...and the largest interval its worst (allow mild non-monotonic noise
    # in between — the wakeups are staggered).
    assert times["interval 160"] >= times["interval 5"]
    # Hoarding, not latency: CWN beats even the zero-latency GM.
    assert cwn_t < event_t
