"""The wider strategy space — all eight strategies on one scenario.

The paper's conclusion: "the space of possible strategies is very
large".  This bench lines up everything the library implements — the two
competitors, the conclusion's ACWN, the receiver-initiated and diffusion
families, and the ideal/degenerate baselines — on the same workload and
machine, as a map of that space.  Asserts the orderings that must hold:
every dynamic scheme beats keep-local, and CWN leads the
locally-informed schemes.
"""

from __future__ import annotations

from repro.core import (
    CWN,
    AdaptiveCWN,
    Diffusion,
    GradientModel,
    KeepLocal,
    RandomPlacement,
    RoundRobin,
    ThresholdRandom,
    WorkStealing,
)
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import Grid
from repro.workload import Fibonacci

ZOO = [
    ("cwn", lambda: CWN(radius=9, horizon=2)),
    ("gm", lambda: GradientModel(low_water_mark=1, high_water_mark=2)),
    ("acwn", lambda: AdaptiveCWN(radius=9, horizon=2, saturation=3.0)),
    ("threshold-random", lambda: ThresholdRandom(threshold=2.0, max_transfers=3)),
    ("stealing", lambda: WorkStealing(threshold=2.0, max_probes=3)),
    ("diffusion", lambda: Diffusion(alpha=0.25, interval=20.0)),
    ("random (global)", lambda: RandomPlacement()),
    ("roundrobin (global)", lambda: RoundRobin()),
    ("keep-local", lambda: KeepLocal()),
]


def test_strategy_zoo(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = Grid(8, 8)

    def run_zoo():
        rows = []
        for name, build in ZOO:
            res = simulate(Fibonacci(fib_n), topo, build(), seed=1)
            rows.append(
                (
                    name,
                    res.speedup,
                    res.utilization_percent,
                    res.mean_goal_distance,
                    res.goal_messages_sent + res.response_messages_sent,
                )
            )
        return rows

    rows = benchmark.pedantic(run_zoo, rounds=1, iterations=1)
    save_artifact(
        "strategy_zoo",
        format_table(
            ["strategy", "speedup", "util %", "hops/goal", "messages"],
            rows,
            title=f"Strategy space: fib({fib_n}) on grid 8x8 (seed 1)",
        ),
    )

    speedups = {name: row[0] for name, *row in rows}
    # Keep-local is the floor.
    assert all(
        speedups[name] > speedups["keep-local"]
        for name in speedups
        if name != "keep-local"
    )
    # CWN leads the locally-informed dynamic schemes — including the
    # threshold policy, which isolates the value of *directed* transfer
    # (same sender-initiated bones, no load table).
    for rival in ("gm", "threshold-random", "stealing", "diffusion"):
        assert speedups["cwn"] > speedups[rival], (rival, speedups)
