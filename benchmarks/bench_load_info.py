"""What is load information worth, and what does it cost?

CWN's whole mechanism is the neighbor-load table.  §2.1 offers two ways
to maintain it — periodic broadcast, or "as an optimization,
piggybacking the load information 'word' with regular messages" — and
the paper's simulations assume a co-processor makes either free.  This
bench runs CWN under every information model the simulator supports:

| mode | freshness | cost |
|---|---|---|
| instant | perfect (oracle) | impossible |
| on_change | delayed by 1 unit | free words (co-processor) |
| periodic | up to 20 units stale | free words |
| piggyback | stale until traffic flows | literally zero extra traffic |
| channel | delayed + queued | full channel contention |

Measured: CWN is remarkably insensitive to the information model — all
five modes land within a few percent.  Perfect (instant) information is
*not* the fastest: herding (every PE steering toward the same believed
minimum simultaneously) slightly outweighs staleness at this scale, a
known effect in load-balancing folklore.  Piggybacking really is free
(zero control words) and costs ~3% over the co-processor model.
Asserted: the modes stay within a tight band, piggyback carries zero
control-word traffic, and CWN beats GM under every information model.
"""

from __future__ import annotations

from repro.core import paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.oracle.config import SimConfig
from repro.topology import Grid
from repro.workload import Fibonacci

MODES = ("instant", "on_change", "piggyback", "periodic", "channel")


def test_load_information_models(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = Grid(8, 8)
    program = Fibonacci(fib_n)

    def sweep():
        rows = []
        for mode in MODES:
            cfg = SimConfig(load_info=mode, seed=1)
            cwn = simulate(program, topo, paper_cwn("grid"), config=cfg)
            gm = simulate(program, topo, paper_gm("grid"), config=cfg)
            rows.append(
                (
                    mode,
                    cwn.completion_time,
                    cwn.control_words_sent,
                    cwn.piggybacked_words,
                    cwn.speedup / gm.speedup,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["load info", "CWN completion", "control words", "piggybacked", "CWN/GM"],
        [
            [mode, f"{t:.0f}", words, piggy, f"{r:.2f}"]
            for mode, t, words, piggy, r in rows
        ],
    )
    save_artifact(
        "load_info_models",
        f"Load-information models, fib({fib_n}) on {topo.name}:\n{table}",
    )

    times = {r[0]: r[1] for r in rows}
    words = {r[0]: r[2] for r in rows}
    piggy = {r[0]: r[3] for r in rows}
    ratios = {r[0]: r[4] for r in rows}

    # CWN is robust to the information model: a tight band, not a cliff.
    assert max(times.values()) <= min(times.values()) * 1.25, times
    # The paper's optimization really is free: zero control words.
    assert words["piggyback"] == 0
    assert piggy["piggyback"] > 0
    # And close to the co-processor model's performance.
    assert times["piggyback"] <= times["on_change"] * 1.5
    # CWN beats GM under every information model.
    for mode in MODES:
        assert ratios[mode] > 1.0, (mode, ratios)
