"""Plots 6-10 — dc utilization vs problem size on the wrap-around grids.

One curve pair (CWN, GM) per torus: 20x20, 10x10, 8x8, 5x5 (the paper
shows the 10x10 twice).  Asserts the stronger grid-side claim: "On the
grid topologies, the CWN is a clear winner by substantial margins", and
the GM "flattening" on large grids (its big-grid utilization stays low
as problems grow, while CWN keeps climbing).
"""

from __future__ import annotations

from repro.experiments.scale import full_scale, pe_counts
from repro.experiments.utilization_curves import render_curve, run_curve
from repro.topology import paper_grid

PLOT_BY_PES = {400: 6, 100: 7, 64: 9, 25: 10}


def test_plots_6_to_10_dc_on_grid(benchmark, save_artifact, save_svg):
    full = full_scale()
    sizes = [n for n in sorted(pe_counts(full), reverse=True) if n in PLOT_BY_PES]

    def run_all():
        return [
            (PLOT_BY_PES[n], run_curve(paper_grid(n), kind="dc", full=full, seed=1))
            for n in sizes
        ]

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "plots_dc_grid",
        "\n\n".join(render_curve(curve, plot_no) for plot_no, curve in curves),
    )
    for plot_no, curve in curves:
        save_svg(
            f"plot{plot_no:02d}_dc_grid",
            curve.series,
            title=f"Plot {plot_no}: dc on {curve.topology}",
            x_label="goals",
            y_label="% PE utilization",
            y_max=100.0,
        )

    for _plot_no, curve in curves:
        cwn = dict(curve.series["cwn"])
        gm = dict(curve.series["gm"])
        # Clear winner: CWN above GM at every problem size.
        wins = sum(cwn[g] > gm[g] for g in cwn)
        assert wins >= 0.8 * len(cwn), f"{curve.topology}: CWN won only {wins}/{len(cwn)}"
        # Substantial margins at the biggest sizes.
        biggest = max(cwn)
        assert cwn[biggest] > 1.15 * gm[biggest], curve.topology
