"""Telemetry overhead: the same run with the sink off, on, and sampling.

The observability layer's contract is that *disabled* telemetry is free:
the per-event kernel hot path carries no instrumentation at all, and the
per-run / per-sample sites pay one ``sink() is None`` check each.  This
bench pins that claim with numbers — the fib(13) @ Grid(8,8) / CWN
flagship run measured three ways:

* **off** — no sink configured (the default, and the bench_kernel floor);
* **on** — a sink writing to an in-memory buffer: run.start/run.finish
  only, so the delta is two ``emit`` calls per run;
* **sampling** — sink plus ``SimConfig(sample_interval=50,
  sample_per_pe=True)``: one ``sample`` event (with a 64-float frame)
  per tick, the ``repro watch`` feed.

The off/on ratio should be indistinguishable from 1.0; sampling adds
work proportional to frames, not events.
"""

from __future__ import annotations

import io
import time

from repro.core import CWN
from repro.obs import telemetry
from repro.oracle.config import SimConfig
from repro.oracle.machine import Machine
from repro.topology import Grid
from repro.workload import Fibonacci


def _flagship(sample: bool = False) -> SimConfig:
    if sample:
        return SimConfig(seed=1, sample_interval=50.0, sample_per_pe=True)
    return SimConfig(seed=1)


def _run(cfg: SimConfig):
    return Machine(Grid(8, 8), Fibonacci(13), CWN(radius=5, horizon=1), cfg).run()


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead(benchmark, save_artifact):
    assert telemetry.sink() is None

    off_s = _best_seconds(lambda: _run(_flagship()))

    def run_instrumented():
        with telemetry.capture():
            return _run(_flagship())

    benchmark.pedantic(run_instrumented, rounds=1)
    on_s = _best_seconds(run_instrumented)

    with telemetry.capture() as sink:
        sampling_s = _best_seconds(lambda: _run(_flagship(sample=True)))
        events = len(telemetry.read_events(sink._fh))

    result = _run(_flagship())
    lines = [
        "telemetry overhead — fib(13) @ grid:8x8 / cwn "
        f"({result.events_executed:,} events)",
        f"  off      : {off_s * 1000:8.1f} ms",
        f"  on       : {on_s * 1000:8.1f} ms  ({on_s / off_s:.2f}x off)",
        f"  sampling : {sampling_s * 1000:8.1f} ms  "
        f"({sampling_s / off_s:.2f}x off, {events} events emitted)",
    ]
    save_artifact("telemetry_overhead", "\n".join(lines))
    # Cross-machine-safe bound: enabled-but-quiet telemetry (two emits
    # per run) must never cost a multiple of the uninstrumented run.
    assert on_s < off_s * 3.0
    assert result.result_value == 233
