"""Where does CWN lose its edge? — the closing caveat, located.

The paper ends with a caution: "When the ratio is higher, CWN may lose
some of its edge."  The comm-ratio bench shows the edge shrinking; this
one pushes the sweep far enough to *find the crossover* — the
communication/computation ratio at which GM overtakes CWN — using the
generic paired-sweep framework and the analysis package's crossover
detector.

A crossover is expected (CWN pays ~3x GM's communication; at some price
that bill dominates).  Measured: it sits at a ratio of roughly 0.05-0.1
— only a few times the paper's ~0.02 operating point.  The caveat is
sharper than the paper's phrasing suggests: CWN's edge doesn't merely
shrink at high ratios, it flips to GM within one order of magnitude of
the published setting.  Both the low-ratio conclusion and the caveat are
confirmed; the margin is the news.
"""

from __future__ import annotations

from repro.core import paper_cwn, paper_gm
from repro.experiments.scale import full_scale
from repro.experiments.sweep import PairedSweep
from repro.oracle.config import CostModel, SimConfig
from repro.topology import Grid
from repro.workload import Fibonacci

RATIOS = (0.02, 0.1, 0.3, 1.0, 2.0, 4.0, 8.0, 16.0)


def test_comm_ratio_crossover(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    topo = Grid(8, 8)

    def factory(ratio: float):
        config = SimConfig(costs=CostModel().with_comm_ratio(ratio))
        return paper_cwn("grid"), paper_gm("grid"), config

    sweep = PairedSweep(
        Fibonacci(fib_n),
        topo,
        factory,
        factor="comm/comp ratio",
        metric="speedup",
        a_name="CWN",
        b_name="GM",
    )

    result = benchmark.pedantic(
        lambda: sweep.run(RATIOS), rounds=1, iterations=1
    )

    crossings = result.crossovers()
    lines = [result.table()]
    if crossings:
        lines.extend(str(c) for c in crossings)
    else:
        lines.append("no crossover within the swept range")
    save_artifact("comm_ratio_crossover", "\n".join(lines))

    # At the paper's operating point CWN clearly wins...
    assert result.points[0].ratio > 1.1
    # ...and communication cost erodes the edge.
    assert result.points[-1].ratio < result.points[0].ratio
    # The caveat made precise: a crossover exists, CWN led before it,
    # and it sits above the paper's ~0.02 operating point (which was
    # chosen exactly to stay clear of communication stagnation).
    assert crossings, "expected GM to overtake CWN somewhere in the sweep"
    first = crossings[0]
    assert first.sign_before == 1  # CWN led before the flip
    assert first.x_estimate > 0.02
