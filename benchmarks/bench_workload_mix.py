"""Mixed workloads — a realistic query blend on one machine.

The paper motivates its domain with functional programs, logic programs
and problem-solving; production machines run blends of those, not one
benchmark at a time.  This bench mixes a balanced tree (dc), a skewed
tree (fib) and a pruned search (N-Queens) under a single root via
``ParallelMix`` and checks the comparison's conclusion survives the
blend — with the bonus accounting check that every sub-result is exact.
"""

from __future__ import annotations

from repro.core import paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import paper_grid
from repro.workload import DivideConquer, Fibonacci, NQueens, ParallelMix


def test_mixed_workload(benchmark, save_artifact):
    if full_scale():
        mix = ParallelMix([DivideConquer(1, 987), Fibonacci(15), NQueens(9)])
    else:
        mix = ParallelMix([DivideConquer(1, 377), Fibonacci(13), NQueens(8)])
    topo = paper_grid(64)
    expected = mix.expected_result()

    def run_both():
        rows = []
        for name, strategy in (("cwn", paper_cwn("grid")), ("gm", paper_gm("grid"))):
            res = simulate(mix, topo, strategy, seed=1)
            assert res.result_value == expected, res.result_value
            rows.append(
                (name, res.completion_time, res.utilization_percent, res.speedup)
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_artifact(
        "workload_mix",
        format_table(
            ["strategy", "completion", "util %", "speedup"],
            rows,
            title=f"Mixed workload {mix.name} on grid 8x8 ({mix.total_goals()} goals)",
        ),
    )

    speedups = {name: row[2] for name, *row in rows}
    assert speedups["cwn"] > speedups["gm"]
