"""CWN:GM advantage versus network diameter — the §4 conjecture, directly.

The paper observed bigger CWN wins on grids (diameter 8-38) than on DLMs
(diameter 4-5) and conjectured CWN "performs better than the GM on large
systems, which of course tend to have larger diameters".  The paper
could only vary diameter jointly with topology family and size; our
extended topology set holds the PE count fixed at 64 and sweeps the
diameter through six different 64-PE networks:

    complete(64) diam 1 · dlm(4,8,8) diam ~4 · hypercube(6) diam 6 ·
    torus3d(4,4,4) diam 6 · chordal(64) diam ~8 · grid(8,8) diam 8 ·
    ccc(4)* diam 12   (*ccc(4) is exactly 64 PEs)

Asserted: the CWN/GM speedup ratio correlates positively with diameter
(Spearman-style rank concordance over the sweep), and the grid ratio
exceeds the DLM ratio as in the paper's Table 2.
"""

from __future__ import annotations

from repro.core import paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import (
    ChordalRing,
    Complete,
    CubeConnectedCycles,
    DoubleLatticeMesh,
    Grid,
    Hypercube,
    Torus3D,
)
from repro.workload import Fibonacci


def _networks():
    return [
        ("complete", Complete(64)),
        ("dlm 4x8x8", DoubleLatticeMesh(4, 8, 8)),
        ("hypercube d6", Hypercube(6)),
        ("torus3d 4x4x4", Torus3D(4, 4, 4)),
        ("chordal n=64", ChordalRing(64)),
        ("grid 8x8", Grid(8, 8)),
        ("ccc d4", CubeConnectedCycles(4)),
    ]


def _family(topo) -> str:
    """Parameter family per Table 1: DLM-like (small diameter, bus) vs
    grid-like."""
    return "dlm" if topo.family in ("dlm", "complete") else "grid"


def _rank_concordance(xs: list[float], ys: list[float]) -> float:
    """Kendall-style concordance in [-1, 1] over all pairs."""
    n = len(xs)
    score = total = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx, dy = xs[i] - xs[j], ys[i] - ys[j]
            if dx == 0 or dy == 0:
                continue
            total += 1
            score += 1 if (dx > 0) == (dy > 0) else -1
    return score / total if total else 0.0


def test_topology_diameter_conjecture(benchmark, save_artifact):
    fib_n = 15 if full_scale() else 13
    program = Fibonacci(fib_n)

    def sweep():
        rows = []
        for name, topo in _networks():
            fam = _family(topo)
            cwn = simulate(program, topo, paper_cwn(fam), seed=1)
            gm = simulate(program, topo, paper_gm(fam), seed=1)
            rows.append((name, topo.diameter, cwn.speedup / gm.speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["network (64 PEs)", "diameter", "CWN/GM speedup ratio"],
        [[name, d, f"{r:.2f}"] for name, d, r in sorted(rows, key=lambda r: r[1])],
    )
    concordance = _rank_concordance(
        [float(d) for _n, d, _r in rows], [r for _n, _d, r in rows]
    )
    save_artifact(
        "topology_sensitivity",
        f"Diameter conjecture, fib({fib_n}) at fixed 64 PEs:\n{table}\n"
        f"rank concordance(diameter, ratio) = {concordance:+.2f}",
    )

    by_name = {name: ratio for name, _d, ratio in rows}
    # The paper's Table 2 ordering: grids favor CWN more than DLMs.
    assert by_name["grid 8x8"] > by_name["dlm 4x8x8"]
    # The conjecture: advantage grows with diameter across the sweep.
    assert concordance > 0.0
