"""Table 2 — "Speedup of CWN over GM" (the paper's central result).

Regenerates the 120-cell grid (reduced by default) and asserts the
paper's headline claims hold in shape:

* CWN wins the overwhelming majority of cells (paper: 118/120);
* most wins are significant, i.e. >10% (paper: 110/120);
* grid ratios reach well above DLM ratios (paper: up to ~3x on grids,
  mostly 1.0-1.5x on DLMs).
"""

from __future__ import annotations

from repro.experiments.comparison import (
    render_table2,
    run_comparison,
    summarize_claims,
)
from repro.experiments.scale import full_scale


def test_table2_speedup_of_cwn_over_gm(benchmark, save_artifact):
    cells = benchmark.pedantic(
        lambda: run_comparison(kind="both", full=full_scale(), seed=1),
        rounds=1,
        iterations=1,
    )
    summary = summarize_claims(cells)
    save_artifact(
        "table2_speedup",
        render_table2(cells) + "\n\n" + str(summary),
    )

    # The paper's qualitative claims, at whatever scale we ran.
    assert summary.cwn_wins >= 0.85 * summary.total, summary
    assert summary.significant >= 0.60 * summary.total, summary

    grid_ratios = [c.ratio for c in cells if c.family == "grid"]
    dlm_ratios = [c.ratio for c in cells if c.family == "dlm"]
    assert max(grid_ratios) > 1.3, "grids should show strong CWN wins"
    # Grids benefit more than DLMs on average (larger diameters).
    assert (sum(grid_ratios) / len(grid_ratios)) > (
        sum(dlm_ratios) / len(dlm_ratios)
    ) * 0.95
