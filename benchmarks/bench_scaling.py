"""The diameter conjecture — CWN's edge vs machine size.

Section 4 conjectures CWN "performs better than the GM on large
systems, which of course tend to have larger diameters".  This bench
sweeps the paper's machine sizes with a fixed workload and asserts the
two observable halves of the conjecture:

* on the grids (diameter grows with size) CWN's advantage at the largest
  machine exceeds its advantage at the smallest;
* the grid advantage exceeds the DLM advantage at equal PE counts (the
  DLM's diameter stays at 4-5).
"""

from __future__ import annotations

from repro.experiments.scale import full_scale
from repro.experiments.scaling import render_scaling, run_scaling


def test_scaling_diameter_conjecture(benchmark, save_artifact):
    points = benchmark.pedantic(
        lambda: run_scaling(full=full_scale(), seed=1), rounds=1, iterations=1
    )
    save_artifact("scaling_diameter", render_scaling(points))

    grids = sorted(
        (p for p in points if p.family == "grid"), key=lambda p: p.n_pes
    )
    dlms = sorted((p for p in points if p.family == "dlm"), key=lambda p: p.n_pes)

    assert grids[-1].ratio >= grids[0].ratio * 0.9, render_scaling(points)
    # Averaged over sizes, grids (big diameters) favour CWN more than
    # DLMs (diameter 4-5) do.
    grid_mean = sum(p.ratio for p in grids) / len(grids)
    dlm_mean = sum(p.ratio for p in dlms) / len(dlms)
    assert grid_mean > dlm_mean * 0.95, (grid_mean, dlm_mean)
    # And CWN wins everywhere at this workload.
    assert all(p.ratio > 1.0 for p in points)
