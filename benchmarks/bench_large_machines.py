"""Large-machine scalability — the conjecture an order of magnitude up.

The paper's evaluation stops at 400 PEs; its central conjecture is
about machines bigger than that.  This bench drives the O(N) machine
representation (closed-form routing, sparse load beliefs) into the
1024-4096-PE regime:

* machine *construction* must stay interactive — a 64x64 torus and a
  4096-PE hypercube must wire up in well under a second (the tabulated
  O(N^2) representation took ~6 s and >100 MB for the grid alone);
* CWN / ACWN / GM run the scaling workload on 1024-PE grids, tori and
  hypercubes (2048 and 4096 PEs at ``REPRO_FULL=1``), and CWN's edge
  over GM must hold in the large-diameter regime the paper could only
  conjecture about.
"""

from __future__ import annotations

import time

from repro.experiments.large_machines import (
    render_large_machines,
    run_large_machines,
)
from repro.experiments.scale import full_scale
from repro.oracle.config import SimConfig
from repro.oracle.machine import Machine
from repro.topology import Grid, Hypercube, make
from repro.workload import Fibonacci


#: wall-clock budget for wiring one 4096-PE machine (topology + PEs +
#: channels + strategy binding) — the acceptance bar, with CI headroom
CONSTRUCTION_BUDGET_S = 1.0


def _build_machine(topology) -> float:
    from repro.core import paper_cwn

    start = time.perf_counter()
    Machine(topology, Fibonacci(10), paper_cwn(topology.family), SimConfig(seed=1))
    return time.perf_counter() - start


def test_large_machine_construction_budget(benchmark, save_artifact):
    def build_all():
        return {
            "grid 64x64": _build_machine(Grid(64, 64)),
            "hypercube 12": _build_machine(Hypercube(12)),
            "torus3d 16x16x16": _build_machine(make("torus3d:16x16x16")),
        }

    timings = benchmark.pedantic(build_all, rounds=1, iterations=1)
    lines = [
        f"{name:18s} {seconds * 1000:8.1f} ms" for name, seconds in timings.items()
    ]
    save_artifact("large_machine_construction", "\n".join(lines))
    for name, seconds in timings.items():
        assert seconds < CONSTRUCTION_BUDGET_S, (name, seconds)


def test_large_machine_conjecture(benchmark, save_artifact):
    points = benchmark.pedantic(
        lambda: run_large_machines(full=full_scale(), seed=1), rounds=1, iterations=1
    )
    save_artifact("large_machines", render_large_machines(points))

    by_machine: dict[tuple[str, int], dict[str, float]] = {}
    for p in points:
        by_machine.setdefault((p.family, p.n_pes), {})[p.strategy] = p.speedup
    assert len(by_machine) >= 3  # grid, torus3d, hypercube at >= 1024 PEs

    for (family, n_pes), speedups in by_machine.items():
        # The conjecture, in the regime it was made about: CWN beats GM
        # on every large machine.
        assert speedups["cwn"] > speedups["gm"], (family, n_pes, speedups)
        # ACWN's saturation control must not forfeit CWN's edge.
        assert speedups["acwn"] > speedups["gm"] * 0.8, (family, n_pes, speedups)
        # 1024+ PEs must actually pay off on this workload: far beyond
        # the best 400-PE speedup would be suspicious, below the small
        # machines' would mean the machine layer broke.
        assert speedups["cwn"] > 25, (family, n_pes, speedups)
