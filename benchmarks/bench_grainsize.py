"""Grain-size sweep — "too small a grainsize would lead to undue overhead".

Measures the introduction's medium-grain argument: speedup collapses at
tiny grains (communication overhead dominates) and recovers as per-goal
work grows.  Asserts the collapse and the recovery for both schemes.
"""

from __future__ import annotations

from repro.experiments.grainsize import render_grainsize, run_grainsize
from repro.experiments.scale import full_scale
from repro.topology import paper_grid
from repro.workload import Fibonacci


def test_grainsize_medium_grain_argument(benchmark, save_artifact):
    program = Fibonacci(15 if full_scale() else 13)

    points = benchmark.pedantic(
        lambda: run_grainsize(program, paper_grid(64), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("grainsize", render_grainsize(points))

    by_grain = {p.grain: p for p in points}
    tiny, medium, large = by_grain[0.05], by_grain[1.0], by_grain[20.0]

    # "Too small a grainsize would lead to undue overhead": both schemes
    # lose most of their speedup at the tiny grain.
    assert tiny.cwn_speedup < 0.5 * medium.cwn_speedup
    assert tiny.gm_speedup < 0.7 * medium.gm_speedup
    # Amortization: bigger grains never hurt.
    assert large.cwn_speedup >= medium.cwn_speedup * 0.9
    # And the paper's regime (grain 1.0 at its low comm ratio) shows the
    # familiar CWN win.
    assert medium.ratio > 1.1
