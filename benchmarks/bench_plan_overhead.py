"""Plan-spine overhead: build + reduce vs raw run_batch, cold vs warm.

The plan pipeline wraps every experiment in two pure functions (builder
and reducer) around :func:`repro.parallel.run_batch`.  This bench pins
the cost of that indirection on a Table 2 slice:

* **plan overhead** — executing the comparison plan vs feeding the same
  specs straight into ``run_batch`` (the delta is plan construction,
  metadata threading and the reduce step);
* **cold vs warm cache** — the wall-clock payoff the spine buys every
  experiment: a warm rerun of the same slice performs zero simulations.
"""

from __future__ import annotations

import os
import time

from repro.experiments.comparison import comparison_plan
from repro.experiments.plan import execute
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.parallel import ResultCache, run_batch


def _slice_kwargs(full: bool) -> dict:
    return dict(
        kind="both",
        pe_counts=(25, 64) if full else (25,),
        fib_sizes=(9, 11) if full else (7, 9),
        dc_sizes=(55,) if full else (21,),
        seed=1,
    )


def test_plan_overhead(benchmark, save_artifact, tmp_path):
    plan = comparison_plan(**_slice_kwargs(full_scale()))
    jobs = min(4, os.cpu_count() or 1)

    # Raw farm baseline: the same specs, no builder/reducer around them.
    t0 = time.perf_counter()
    raw = run_batch(list(plan.runs), jobs=None)
    raw_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cells = execute(plan, jobs=None)
    plan_s = time.perf_counter() - t0
    assert len(cells) == len(plan.runs) // 2
    assert [c.cwn.completion_time for c in cells] == [
        r.completion_time for r in raw.results[0::2]
    ]

    # Build + reduce alone (simulations mocked out by the warm cache).
    cache = ResultCache(tmp_path)
    t0 = time.perf_counter()
    cold = execute(comparison_plan(**_slice_kwargs(full_scale())), jobs=jobs, cache=cache)
    cold_s = time.perf_counter() - t0
    assert [c.ratio for c in cold] == [c.ratio for c in cells]

    warm_cache = ResultCache(tmp_path)
    warm = benchmark.pedantic(
        lambda: execute(
            comparison_plan(**_slice_kwargs(full_scale())), jobs=jobs, cache=warm_cache
        ),
        rounds=1,
        iterations=1,
    )
    warm_s = benchmark.stats.stats.total
    assert [c.ratio for c in warm] == [c.ratio for c in cells]
    assert warm_cache.misses == 0, "warm rerun must not simulate"

    overhead_pct = 100.0 * (plan_s - raw_s) / raw_s if raw_s else 0.0
    rows = [
        ("raw run_batch (serial)", f"{raw_s:.3f}", "-"),
        ("plan execute (serial)", f"{plan_s:.3f}", f"{overhead_pct:+.1f}% vs raw"),
        (f"plan execute (cold cache, jobs={jobs})", f"{cold_s:.3f}", "-"),
        ("plan execute (warm cache)", f"{warm_s:.3f}", f"{cold_s / warm_s:.0f}x vs cold"),
    ]
    save_artifact(
        "plan_overhead",
        format_table(
            ["configuration", "seconds", "delta"],
            rows,
            title=f"Plan-spine overhead on a Table 2 slice ({len(plan.runs)} runs)",
        ),
    )
