"""Shared benchmark plumbing.

Every bench regenerates one of the paper's tables or figures (DESIGN.md
section 4 maps them).  Conventions:

* benches run the experiment inside ``benchmark.pedantic`` (one round —
  these are simulations, not microkernels; wall time is still recorded
  by pytest-benchmark for regression tracking);
* rendered paper-style output is printed *and* written to
  ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can quote it;
* reduced-scale grids by default; ``REPRO_FULL=1`` runs paper scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

ARTIFACT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write (and echo) a bench's rendered output."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def save_svg(artifact_dir):
    """Write a figure bench's SVG rendering (publication-style twin of
    the text artifact)."""

    def _save(name: str, series: dict, **kwargs) -> None:
        from repro.experiments.svg import svg_line_chart

        path = artifact_dir / f"{name}.svg"
        path.write_text(svg_line_chart(series, **kwargs))

    return _save
