"""Plots 14-16 — utilization vs time, Fibonacci on the 10x10 grid.

The grid-side traces, where GM's hoarding "vicious cycle" flattens its
curve: "When about 40% of the PEs have received work, most PEs think
there is not sufficient work to distribute it to others... which leads
to loss of parallelism".  Asserts CWN's faster rise *and* higher peak on
the grid.
"""

from __future__ import annotations

from repro.experiments.scale import full_scale
from repro.experiments.timeseries import render_timeseries, rise_time, run_timeseries
from repro.topology import paper_grid


def test_plots_14_to_16_fib_timeseries_grid(benchmark, save_artifact, save_svg):
    full = full_scale()
    sizes = (18, 15, 9) if full else (13, 11, 9)
    topo = paper_grid(100)

    def run_all():
        return [(n, run_timeseries(n, topo, seed=1)) for n in sizes]

    studies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "plots_timeseries_grid",
        "\n\n".join(
            render_timeseries(study, plot_no)
            for plot_no, (_n, study) in zip((14, 15, 16), studies)
        ),
    )
    for plot_no, (_n, study) in zip((14, 15, 16), studies):
        save_svg(
            f"plot{plot_no}_timeseries_grid",
            study.series,
            title=f"Plot {plot_no}: {study.workload} on {study.topology}",
            x_label="time",
            y_label="% PE utilization",
            y_max=100.0,
        )

    for n, study in studies:
        if n < 11:
            continue
        cwn_trace = study.series["cwn"]
        gm_trace = study.series["gm"]
        assert rise_time(cwn_trace, 30.0) <= rise_time(gm_trace, 30.0)
        # The grid flattening: GM's peak clearly below CWN's peak.
        cwn_peak = max(u for _, u in cwn_trace)
        gm_peak = max(u for _, u in gm_trace)
        assert cwn_peak >= gm_peak * 0.95, f"fib({n}): peaks {cwn_peak} vs {gm_peak}"
