"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the event kernel's and the end-to-end
simulator's throughput so performance regressions in the substrate are
caught by the same harness that regenerates the paper.

CI runs this file twice: with ``--benchmark-disable`` as a correctness
smoke (every bench still executes once and asserts its result), and the
floor tests below measure wall-clock events/sec with a 10x safety margin
so an accidental return to generator-speed dispatch fails the build.
"""

from __future__ import annotations

import time

from repro.core import CWN
from repro.oracle.config import SimConfig
from repro.oracle.engine import Engine, hold, use_process_kernel
from repro.oracle.machine import Machine
from repro.topology import Grid
from repro.workload import Fibonacci


def test_engine_event_throughput(benchmark):
    """Raw calendar throughput: schedule-and-fire 50k events."""

    def run_events():
        engine = Engine()
        count = 50_000
        for i in range(count):
            engine.schedule(float(i % 97), lambda _: None)
        engine.run()
        return engine.events_executed

    executed = benchmark(run_events)
    assert executed == 50_000


def test_engine_process_throughput(benchmark):
    """Generator-process resumption rate: 10 processes x 2k holds."""

    def run_procs():
        engine = Engine()

        def proc():
            for _ in range(2_000):
                yield hold(1.0)

        for _ in range(10):
            engine.process(proc())
        engine.run()
        return engine.events_executed

    executed = benchmark(run_procs)
    assert executed >= 20_000


def test_tick_scheduler_throughput(benchmark):
    """Recurring-tick rate: 100 ticks x 1k periods on one recycled entry
    each — the pattern of samplers, load broadcasters, and GM wakeups."""

    def run_ticks():
        engine = Engine()
        fired = [0]

        def body():
            fired[0] += 1

        for i in range(100):
            engine.tick(1.0, body, offset=0.001 * i)
        engine.schedule(999.9, lambda _: engine.stop())
        engine.run()
        return fired[0]

    fired = benchmark(run_ticks)
    assert fired == 100_000


def test_end_to_end_simulation_throughput(benchmark):
    """A full mid-size CWN run: fib(13) on a 64-PE torus."""

    def run_sim():
        machine = Machine(
            Grid(8, 8), Fibonacci(13), CWN(radius=5, horizon=1), SimConfig(seed=1)
        )
        return machine.run()

    res = benchmark(run_sim)
    assert res.result_value == 233


def test_process_kernel_still_works(benchmark):
    """The generator kernel (test/exotic-strategy path) stays correct and
    is tracked here so its relative cost is visible in the history."""

    def run_sim():
        with use_process_kernel():
            machine = Machine(
                Grid(8, 8), Fibonacci(13), CWN(radius=5, horizon=1), SimConfig(seed=1)
            )
            return machine.run()

    res = benchmark(run_sim)
    assert res.result_value == 233


# -- events/sec floors (plain wall-clock; run even with --benchmark-disable) ----

def _events_per_second(run, events_of, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return events_of(result) / best


def test_raw_calendar_floor():
    """Schedule-and-fire floor: the bare heap loop must stay >200k evt/s
    (measured ~2-4M locally; 10x margin plus CI-machine headroom)."""

    def run():
        engine = Engine()
        for i in range(20_000):
            engine.schedule(float(i % 97), lambda _: None)
        engine.run()
        return engine

    assert _events_per_second(run, lambda e: e.events_executed) > 200_000


def test_end_to_end_floor():
    """fib(13)/Grid(8,8)/CWN must stay >25k events/s end-to-end (measured
    ~300-400k locally after the callback-executor overhaul; the floor
    catches a 10x regression without flaking on slow CI hardware)."""

    def run():
        return Machine(
            Grid(8, 8), Fibonacci(13), CWN(radius=5, horizon=1), SimConfig(seed=1)
        ).run()

    assert _events_per_second(run, lambda r: r.events_executed) > 25_000


def test_disabled_telemetry_floor():
    """The ISSUE-6 observability contract: with no telemetry sink
    configured, a sampled end-to-end run pays only a handful of
    ``sink() is None`` checks and must clear the same 25k evt/s floor —
    the per-event hot path is untouched by instrumentation."""
    from repro.obs import telemetry

    assert telemetry.sink() is None, "floor must measure the disabled path"

    def run():
        return Machine(
            Grid(8, 8),
            Fibonacci(13),
            CWN(radius=5, horizon=1),
            SimConfig(seed=1, sample_interval=50.0, sample_per_pe=True),
        ).run()

    assert _events_per_second(run, lambda r: r.events_executed) > 25_000
