"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the event kernel's and the end-to-end
simulator's throughput so performance regressions in the substrate are
caught by the same harness that regenerates the paper.
"""

from __future__ import annotations

from repro.core import CWN
from repro.oracle.config import SimConfig
from repro.oracle.engine import Engine, hold
from repro.oracle.machine import Machine
from repro.topology import Grid
from repro.workload import Fibonacci


def test_engine_event_throughput(benchmark):
    """Raw calendar throughput: schedule-and-fire 50k events."""

    def run_events():
        engine = Engine()
        count = 50_000
        for i in range(count):
            engine.schedule(float(i % 97), lambda _: None)
        engine.run()
        return engine.events_executed

    executed = benchmark(run_events)
    assert executed == 50_000


def test_engine_process_throughput(benchmark):
    """Generator-process resumption rate: 10 processes x 2k holds."""

    def run_procs():
        engine = Engine()

        def proc():
            for _ in range(2_000):
                yield hold(1.0)

        for _ in range(10):
            engine.process(proc())
        engine.run()
        return engine.events_executed

    executed = benchmark(run_procs)
    assert executed >= 20_000


def test_end_to_end_simulation_throughput(benchmark):
    """A full mid-size CWN run: fib(13) on a 64-PE torus."""

    def run_sim():
        machine = Machine(
            Grid(8, 8), Fibonacci(13), CWN(radius=5, horizon=1), SimConfig(seed=1)
        )
        return machine.run()

    res = benchmark(run_sim)
    assert res.result_value == 233
