"""Table 1 — the parameter-optimization experiments.

Sweeps each scheme's parameter space at sample points (per topology
family) and reports the winning combinations, mirroring the paper's
"Selected Parameters" table.  Asserts the qualitative findings behind
the paper's choices:

* a non-trivial radius clearly beats a tiny one for CWN (work must
  spread);
* GM prefers a low high-water-mark (hoard less) and a frequent gradient
  process (the paper notes 20 units "is fairly low", favouring GM).
"""

from __future__ import annotations

from repro.experiments.optimization import render_table1, run_optimization
from repro.experiments.scale import full_scale


def test_table1_selected_parameters(benchmark, save_artifact):
    results = benchmark.pedantic(
        lambda: run_optimization(small=not full_scale(), seed=1),
        rounds=1,
        iterations=1,
    )
    save_artifact("table1_optimization", render_table1(results))

    for family in ("grid", "dlm"):
        cwn_sweep = results[family]["cwn"]
        best_cwn = cwn_sweep[0]
        # The winner must clearly beat the most local configuration swept.
        most_local = min(cwn_sweep, key=lambda sp: sp.params["radius"])
        assert best_cwn.params["radius"] > 2
        assert best_cwn.mean_speedup >= most_local.mean_speedup

        gm_sweep = results[family]["gm"]
        best_gm = gm_sweep[0]
        slowest_interval = max(sp.params["interval"] for sp in gm_sweep)
        assert best_gm.params["interval"] < slowest_interval
