"""Does the paper's conclusion survive irregular workloads?

The paper deliberately used *predictable* trees (dc, fib) so simulation
features could be attributed to the strategies.  Its introduction,
though, motivates the problem with *unpredictable* computations.  This
bench closes the loop: CWN versus GM on the extended irregular workload
set —

* UTS-style geometric trees (subtree sizes varying over orders of
  magnitude),
* randomized quicksort recursion (data-dependent splits),
* binomial-coefficient recursion at skewed k (chain-like phases),
* the cyclic waxing/waning-parallelism tree the paper itself names,

each over several shape seeds where applicable.  Asserted with the
analysis package's sign test: CWN wins a significant majority of cells,
i.e. the paper's conclusion is not an artifact of dc/fib regularity.
"""

from __future__ import annotations

from repro.analysis import paired_summary
from repro.core import paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import Grid
from repro.workload import (
    BinomialCoefficient,
    CyclicTree,
    QuicksortTree,
    UnbalancedTreeSearch,
)


def _workloads(full: bool):
    seeds = range(4) if full else range(2)
    for s in seeds:
        yield UnbalancedTreeSearch(seed=s, root_children=24, q=0.47, m=2)
    for s in seeds:
        yield QuicksortTree(3000 if full else 1200, seed=s)
    yield BinomialCoefficient(14, 4)
    yield BinomialCoefficient(14, 7)
    yield CyclicTree(cycles=3, expand_depth=4, chain_depth=3)


def test_irregular_workloads(benchmark, save_artifact):
    full = full_scale()
    topo = Grid(8, 8)

    def sweep():
        rows = []
        for program in _workloads(full):
            cwn = simulate(program, topo, paper_cwn("grid"), seed=1)
            gm = simulate(program, topo, paper_gm("grid"), seed=1)
            label = getattr(program, "label", program.name)
            rows.append((label, cwn.total_goals, cwn.speedup, gm.speedup))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    ratios = [c / g for _l, _n, c, g in rows]
    summary = paired_summary(ratios)
    table = format_table(
        ["workload", "goals", "CWN speedup", "GM speedup", "ratio"],
        [
            [label, n, f"{c:.1f}", f"{g:.1f}", f"{c / g:.2f}"]
            for (label, n, c, g) in rows
        ],
    )
    save_artifact(
        "irregular_workloads",
        f"Irregular workloads on {topo.name}:\n{table}\n{summary}",
    )

    # The conclusion must extend: CWN wins the (clear) majority of the
    # irregular cells too.
    assert summary.wins > summary.losses
    assert summary.geometric_mean_ratio > 1.0
