"""Heterogeneous machines — where dynamic distribution earns its keep.

The paper's premise: "the structure of these computations cannot be
predicted in advance.  So, static scheduling methods are not
applicable."  Machine heterogeneity sharpens that argument: even for a
*predictable* computation, a static spreader (round-robin) cannot see
that half the PEs run at half speed, while the dynamic schemes route
around the slow PEs through their load measures alone.

Scenario: a saturated 25-PE grid (fib >> PEs) where every other PE runs
at half speed — aggregate capacity 19.0 equivalent PEs.  The bench
asserts the dynamic schemes convert a clearly larger fraction of that
capacity into speedup than the static spreader does, and that nobody
exceeds the capacity bound (a physics check on the simulator itself).
"""

from __future__ import annotations

from repro.core import RoundRobin, paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.oracle.config import SimConfig
from repro.topology import paper_grid
from repro.workload import Fibonacci


def test_heterogeneous_machine(benchmark, save_artifact):
    fib_n = 18 if full_scale() else 15
    topo = paper_grid(25)
    mixed = tuple(1.0 if pe % 2 == 0 else 0.5 for pe in range(topo.n))
    capacity = sum(mixed)

    strategies = (
        ("cwn", lambda: paper_cwn("grid")),
        ("gm", lambda: paper_gm("grid")),
        ("roundrobin (static)", lambda: RoundRobin()),
    )

    def run_all():
        rows = []
        for name, build in strategies:
            homo = simulate(Fibonacci(fib_n), topo, build(), config=SimConfig(seed=1))
            hetero = simulate(
                Fibonacci(fib_n),
                topo,
                build(),
                config=SimConfig(seed=1, pe_speeds=mixed),
            )
            rows.append(
                (name, homo.speedup, hetero.speedup, hetero.speedup / capacity)
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "heterogeneity",
        format_table(
            ["strategy", "homogeneous", "half-speed mix", "frac of capacity"],
            rows,
            title=(
                f"Heterogeneity: fib({fib_n}) on grid 5x5, every other PE at half "
                f"speed (aggregate capacity {capacity:.1f})"
            ),
        ),
    )

    frac = {name: row[2] for name, *row in rows}
    # Physics: no scheme can exceed the machine's aggregate capacity.
    assert all(f <= 1.0 + 1e-9 for f in frac.values()), frac
    # Dynamic schemes adapt to conditions the static spreader cannot see.
    assert frac["cwn"] > frac["roundrobin (static)"] * 1.15, frac
    assert frac["gm"] > frac["roundrobin (static)"] * 1.15, frac
