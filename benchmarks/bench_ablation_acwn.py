"""Ablation — the CWN improvements proposed in the paper's conclusion.

Section 5 proposes saturation control, a bounded redistribution
component and a commitments-aware load measure.  This bench measures
each component separately against plain CWN (DESIGN.md lists this as the
design-choice ablation), on a workload big enough to saturate the
machine — the regime the saturation argument targets.
"""

from __future__ import annotations

from repro.core import CWN, AdaptiveCWN
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.tables import format_table
from repro.topology import Grid
from repro.workload import Fibonacci

VARIANTS = [
    ("cwn", lambda: CWN(radius=5, horizon=1)),
    ("cwn strict-keep", lambda: CWN(radius=5, horizon=1, keep_on_tie=False)),
    (
        "acwn saturation",
        lambda: AdaptiveCWN(radius=5, horizon=1, saturation=3.0, pull=False),
    ),
    (
        "acwn pull",
        lambda: AdaptiveCWN(radius=5, horizon=1, saturation=None, pull=True),
    ),
    (
        "acwn commitments",
        lambda: AdaptiveCWN(
            radius=5, horizon=1, saturation=None, pull=False, load_metric="commitments"
        ),
    ),
    (
        "acwn full",
        lambda: AdaptiveCWN(radius=5, horizon=1, saturation=3.0, pull=True),
    ),
]


def test_ablation_acwn_components(benchmark, save_artifact):
    # A saturated regime (goals >> PEs): where saturation control is
    # supposed to matter.
    fib_n = 18 if full_scale() else 15
    topo = Grid(8, 8) if full_scale() else Grid(5, 5)

    def run_all():
        rows = []
        for name, build in VARIANTS:
            res = simulate(Fibonacci(fib_n), topo, build(), seed=1)
            rows.append(
                (
                    name,
                    res.speedup,
                    res.utilization_percent,
                    res.mean_goal_distance,
                    res.goal_messages_sent,
                )
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact(
        "ablation_acwn",
        format_table(
            ["variant", "speedup", "util %", "hops/goal", "goal msgs"],
            rows,
            title=f"ACWN component ablation: fib({fib_n}) on grid {topo.rows}x{topo.cols}",
        ),
    )

    by_name = {name: row for name, *row in rows}
    base_speedup, _, base_hops, base_msgs = by_name["cwn"]

    # Saturation control must cut communication deeply while keeping most
    # of the speedup — the trade the paper's conclusion asks for.
    sat_speedup, _, _, sat_msgs = by_name["acwn saturation"]
    assert sat_msgs < 0.7 * base_msgs
    assert sat_speedup > 0.7 * base_speedup

    # The tie-keeping default must communicate less than the strict
    # reading (see the faithfulness note in repro.core.cwn).
    _, _, strict_hops, _ = by_name["cwn strict-keep"]
    assert base_hops < strict_hops
