"""The graphics monitor as figures — spacetime heat maps of both schemes.

The paper: "the utilization of each PE is output at every sampling
interval.  This data is displayed on the graphics device with a
continuum of colors representing relative activity on each PE (red:
busy, blue: idle).  We found this facility particularly useful for
debugging the load balancing strategies."

This bench produces that display as SVG artifacts for CWN and GM on the
paper's 10x10 grid, and asserts the two phenomena the paper reads off
it: CWN involves (nearly) the whole machine quickly — its 90% work
front arrives far earlier than GM's — while GM leaves a band of PEs
idle deep into the run.
"""

from __future__ import annotations

from repro.core import paper_cwn, paper_gm
from repro.experiments.runner import simulate
from repro.experiments.scale import full_scale
from repro.experiments.svg import svg_spacetime
from repro.oracle.config import SimConfig
from repro.topology import paper_grid
from repro.workload import Fibonacci


def test_spacetime_heatmaps(benchmark, save_artifact, artifact_dir):
    fib_n = 15 if full_scale() else 13
    topo = paper_grid(100)

    def run_both():
        out = {}
        for name, build in (("cwn", paper_cwn), ("gm", paper_gm)):
            pilot = simulate(Fibonacci(fib_n), topo, build("grid"), seed=1)
            interval = max(pilot.completion_time / 60, 1.0)
            cfg = SimConfig(seed=1, sample_interval=interval, sample_per_pe=True)
            out[name] = simulate(Fibonacci(fib_n), topo, build("grid"), config=cfg)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = []
    for name, res in results.items():
        svg = svg_spacetime(
            [(s.time, s.per_pe) for s in res.samples],
            title=f"{name.upper()} — fib({fib_n}) on {topo.name}",
            completion=res.completion_time,
        )
        path = artifact_dir / f"spacetime_{name}.svg"
        path.write_text(svg)
        lines.append(
            f"{name}: completion={res.completion_time:.0f} "
            f"spread90={res.spread_time(0.9):.0f} "
            f"participating={res.participating_pes}/100 -> {path.name}"
        )
    save_artifact("spacetime", "\n".join(lines))

    cwn, gm = results["cwn"], results["gm"]
    # CWN's work front reaches 90% of the machine much sooner.
    assert cwn.spread_time(0.9) < gm.spread_time(0.9)
    # And involves at least as much of the machine overall.
    assert cwn.participating_pes >= gm.participating_pes
