"""The fib counterparts of Plots 1-10.

The paper: "The Fibonacci plots are very similar, so we omit them from
the plots.  However, the comparative figures from all the runs are shown
in table 2."  We generate them anyway and assert the similarity claim:
the CWN-over-GM win pattern on fib matches dc's.
"""

from __future__ import annotations

from repro.experiments.scale import full_scale, pe_counts
from repro.experiments.utilization_curves import render_curve, run_curve
from repro.topology import paper_dlm, paper_grid


def test_fib_curves_mirror_dc(benchmark, save_artifact):
    full = full_scale()
    n_pes = max(pe_counts(full))

    def run_both():
        out = {}
        for family, make in (("grid", paper_grid), ("dlm", paper_dlm)):
            topo = make(n_pes)
            out[family] = {
                "fib": run_curve(topo, kind="fib", full=full, seed=1),
                "dc": run_curve(topo, kind="dc", full=full, seed=1),
            }
        return out

    curves = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_artifact(
        "plots_fib_curves",
        "\n\n".join(
            render_curve(curves[family]["fib"]) for family in ("grid", "dlm")
        ),
    )

    for family in ("grid", "dlm"):
        fib_curve = curves[family]["fib"]
        dc_curve = curves[family]["dc"]

        def win_fraction(curve):
            cwn = [u for _, u in curve.series["cwn"]]
            gm = [u for _, u in curve.series["gm"]]
            return sum(c > g for c, g in zip(cwn, gm)) / len(cwn)

        # "Very similar": CWN dominates fib exactly as it dominates dc.
        assert abs(win_fraction(fib_curve) - win_fraction(dc_curve)) <= 0.4
        assert win_fraction(fib_curve) >= 0.6
