#!/usr/bin/env python
"""Dynamic load distribution on a heterogeneous machine.

The paper argues dynamic strategies are necessary because *computation
structure* is unpredictable.  This example shows the same machinery also
absorbs unpredictable *machines*: half the PEs run at half speed, and
the dynamic schemes route work toward the fast half using nothing but
their ordinary load measures, while a static round-robin deal splits
work evenly and stalls on the slow PEs.

Run:  python examples/heterogeneous_machine.py
"""

from repro import SimConfig, simulate
from repro.core import RoundRobin, paper_cwn, paper_gm
from repro.topology import Grid
from repro.workload import NQueens

TOPOLOGY = Grid(5, 5)
#: every other PE at half speed: aggregate capacity 19.0 "full" PEs
SPEEDS = tuple(1.0 if pe % 2 == 0 else 0.5 for pe in range(TOPOLOGY.n))


def main() -> None:
    workload = NQueens(8)  # 2057 goals of genuinely irregular sizes
    capacity = sum(SPEEDS)
    print(f"queens(8) on a 5x5 grid; capacity {capacity:.1f} of 25 nominal PEs\n")
    print(f"{'strategy':>12s}  {'speedup':>8s}  {'% of capacity':>13s}  {'goals on fast PEs':>18s}")

    for name, strategy in (
        ("cwn", paper_cwn("grid")),
        ("gm", paper_gm("grid")),
        ("roundrobin", RoundRobin()),
    ):
        cfg = SimConfig(seed=1, pe_speeds=SPEEDS)
        res = simulate(workload, TOPOLOGY, strategy, config=cfg)
        assert res.result_value == 92  # queens(8) has 92 solutions
        fast_share = res.goals_per_pe[::2].sum() / res.total_goals
        print(
            f"{name:>12s}  {res.speedup:8.2f}  {100 * res.speedup / capacity:12.1f}%"
            f"  {100 * fast_share:17.1f}%"
        )

    print()
    print("The dynamic schemes push well over half the goals onto the fast")
    print("PEs without being told which ones are fast; the static deal")
    print("cannot, and pays for it in speedup.")


if __name__ == "__main__":
    main()
