#!/usr/bin/env python
"""Statistical analysis: turn a comparison grid into defensible claims.

The paper's evidence is a sentence — "In 118 out of 120 cases, the CWN
is seen to be better".  This example runs a small CWN-vs-GM grid, then
uses ``repro.analysis`` to produce what a modern evaluation would
attach: an exact sign-test p-value, a Wilcoxon signed-rank check on the
magnitudes, a bootstrap confidence interval on the geometric-mean
ratio, and a Markdown report block ready for EXPERIMENTS.md.

Run:  python examples/statistical_analysis.py
"""

from repro import simulate
from repro.analysis import (
    bootstrap_ci,
    paired_summary,
    render_report,
    wilcoxon_signed_rank,
)

# A reduced Table-2-style grid: 2 workloads x 2 sizes x 2 machines.
WORKLOADS = ["fib:11", "fib:13", "dc:1:144", "dc:1:377"]
TOPOLOGIES = ["grid:5x5", "grid:8x8"]


def main() -> None:
    ratios = []
    print("cell-by-cell speedup ratios (CWN / GM):")
    for workload in WORKLOADS:
        for topology in TOPOLOGIES:
            cwn = simulate(workload, topology, "cwn", seed=1)
            gm = simulate(workload, topology, "gm", seed=1)
            ratio = cwn.speedup / gm.speedup
            ratios.append(ratio)
            print(f"  {workload:10s} on {topology:10s}: {ratio:.2f}")

    summary = paired_summary(ratios)
    print(f"\nsummary: {summary}")

    # Magnitude-aware check: are the log-ratios centred above zero?
    import math

    log_ratios = [math.log(r) for r in ratios]
    if len([d for d in log_ratios if d != 0]) >= 10:
        w, p = wilcoxon_signed_rank(log_ratios)
        print(f"Wilcoxon signed-rank on log-ratios: W+ = {w:.0f}, p = {p:.3g}")
    else:
        print("(grid too small for the Wilcoxon normal approximation — "
              "run more cells for that)")

    lo, hi = bootstrap_ci(ratios, seed=0)
    print(f"bootstrap 95% CI of the mean ratio: [{lo:.2f}, {hi:.2f}]")

    print("\n--- Markdown report block ---\n")
    print(
        render_report(
            "Reduced Table 2 grid",
            summary,
            paper_claims={"wins": "118/120", "wins by >10%": "110"},
            notes=[
                f"{len(ratios)} cells (reduced grid; REPRO_FULL bench runs all 120)",
                "single seed per cell, like the paper",
            ],
        )
    )


if __name__ == "__main__":
    main()
