#!/usr/bin/env python
"""Define a custom interconnection topology and measure strategies on it.

The paper's schemes only assume a neighbor relation and channels, so any
``repro.topology.Topology`` subclass works.  This example builds a
chordal ring (a ring with skip links — a classic 1980s interconnect the
paper does not evaluate) and compares how far CWN's advantage over GM
carries as the chord length changes the diameter.

Run:  python examples/custom_topology.py
"""

from repro import simulate
from repro.core import paper_cwn, paper_gm
from repro.topology import Topology


class ChordalRing(Topology):
    """A ring of ``n`` PEs with extra chords of length ``chord``.

    Every PE links to its two ring neighbors and to the PEs ``chord``
    positions away in both directions.  ``chord=1`` degenerates to the
    plain ring; larger chords shrink the diameter roughly by ``chord``.
    """

    family = "chordal"

    def __init__(self, n: int, chord: int) -> None:
        if n < 4:
            raise ValueError("chordal ring needs at least 4 PEs")
        if not 1 <= chord <= n // 2:
            raise ValueError("chord must be in 1..n/2")
        self.n = n
        self.chord = chord
        super().__init__()

    def _build(self):
        neighbor_sets = [set() for _ in range(self.n)]
        links = set()
        for pe in range(self.n):
            for step in (1, self.chord):
                other = (pe + step) % self.n
                if other == pe:
                    continue
                neighbor_sets[pe].add(other)
                neighbor_sets[other].add(pe)
                links.add((min(pe, other), max(pe, other)))
        return neighbor_sets, sorted(links)

    @property
    def name(self) -> str:
        return f"chordal n={self.n} chord={self.chord}"


def main() -> None:
    workload = "fib:13"  # 753 goals
    print(f"{'topology':>26s}  diam  CWN speedup  GM speedup  ratio")
    for chord in (1, 4, 8, 16):
        topo = ChordalRing(32, chord)
        cwn = simulate(workload, topo, paper_cwn("grid"), seed=1)
        gm = simulate(workload, topo, paper_gm("grid"), seed=1)
        print(
            f"{topo.name:>26s}  {topo.diameter:4d}  {cwn.speedup:11.2f}"
            f"  {gm.speedup:10.2f}  {cwn.speedup / gm.speedup:5.2f}"
        )
    print()
    print("The paper conjectures CWN's edge grows with network diameter;")
    print("watch the ratio column fall as chords shrink the diameter.")


if __name__ == "__main__":
    main()
