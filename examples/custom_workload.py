#!/usr/bin/env python
"""Define a custom workload and study load-distribution under it.

The paper deliberately uses predictable trees (dc, fib) so results are
interpretable, and notes real computations have parallelism that rises
and falls in cycles.  This example defines a *search tree with pruning*
— a branch-and-bound flavored workload where whole subtrees are cheap
dead ends — and checks whether the paper's conclusion survives the
irregularity.

A workload only needs three methods: ``root_payload``, ``expand`` (pure
in the payload!) and ``combine``.

Run:  python examples/custom_workload.py
"""

from repro import simulate
from repro.core import paper_cwn, paper_gm
from repro.workload import CyclicTree, RandomTree
from repro.workload.base import Leaf, Program, Split
from repro.workload.synthetic import _mix  # deterministic payload hashing


class PrunedSearch(Program):
    """A search tree where ~half the branches die quickly.

    Payloads are paths from the root.  Interior nodes spawn 3 children;
    a child whose hash looks "unpromising" becomes a cheap leaf (a
    pruned branch), others recurse until ``depth``.  The result counts
    the surviving full-depth leaves.
    """

    name = "pruned-search"

    def __init__(self, depth: int = 8, seed: int = 0, prune_prob: float = 0.45) -> None:
        self.depth = depth
        self.seed = seed
        self.prune_prob = prune_prob

    def root_payload(self):
        return ()

    def _pruned(self, path) -> bool:
        return (_mix(self.seed, *path) / 2**64) < self.prune_prob

    def expand(self, path):
        if len(path) >= self.depth:
            return Leaf(1)  # a surviving solution
        if path and self._pruned(path):
            return Leaf(0, work=0.2)  # pruned: a short, cheap task
        return Split(tuple(path + (i,) for i in range(3)))

    def combine(self, path, values):
        return sum(values)


def compare(workload, label: str) -> None:
    cwn = simulate(workload, "grid:8x8", paper_cwn("grid"), seed=1)
    gm = simulate(workload, "grid:8x8", paper_gm("grid"), seed=1)
    print(
        f"{label:<24s} goals={cwn.total_goals:6d}  CWN {cwn.utilization_percent:5.1f}%"
        f"  GM {gm.utilization_percent:5.1f}%  ratio {cwn.speedup / gm.speedup:5.2f}"
    )


def main() -> None:
    print("Irregular workloads on a 64-PE grid (CWN vs GM):\n")
    compare(PrunedSearch(depth=8, seed=3), "pruned search")
    compare(RandomTree(seed=3, expected_depth=7, max_children=3), "random tree")
    compare(CyclicTree(cycles=3, expand_depth=4, chain_depth=3), "cyclic parallelism")
    print()
    print("The paper's claim holds beyond its two benchmark trees: the")
    print("agile scheme wins wherever there is enough work to spread.")


if __name__ == "__main__":
    main()
