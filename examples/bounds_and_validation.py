#!/usr/bin/env python
"""Analytic bounds and invariant checking on your own runs.

Every simulation in this library can be cross-checked two ways:

* **bounds** — no run may finish faster than ``max(T1/P, T_inf)``; a
  greedy scheduler with free communication would finish by
  ``T1/P + T_inf`` (Brent).  How close a strategy gets to that envelope
  is a one-number quality score.
* **invariants** — work conservation, goal accounting, histogram
  totals, utilization ranges: ``validate_result`` raises if a run broke
  any of them.

Run:  python examples/bounds_and_validation.py
"""

from repro.core import make_strategy
from repro.oracle.config import CostModel, SimConfig
from repro.oracle.machine import Machine
from repro.topology import Grid
from repro.validation import completion_bounds, validate_result
from repro.workload import Fibonacci

PROGRAM = Fibonacci(13)
TOPOLOGY = Grid(8, 8)


def main() -> None:
    costs = CostModel()
    bounds = completion_bounds(PROGRAM, costs, TOPOLOGY.n)
    print(f"fib(13) on {TOPOLOGY.name}:")
    print(f"  total work T1          = {bounds.work:,.0f}")
    print(f"  critical path T_inf    = {bounds.span:,.0f}")
    print(f"  lower bound max(T1/P, T_inf) = {bounds.lower:,.0f}")
    print(f"  greedy envelope T1/P + T_inf = {bounds.brent_upper:,.0f}")
    print(f"  best possible speedup  = {bounds.max_speedup:.1f} on {TOPOLOGY.n} PEs")
    print()

    print(f"  {'strategy':10s} {'completion':>10s} {'x lower':>8s} {'x greedy':>9s}")
    for spec in ("cwn", "gm", "stealing", "local"):
        machine = Machine(
            TOPOLOGY, PROGRAM, make_strategy(spec, family="grid"), SimConfig(seed=1)
        )
        result = machine.run()
        # Raises InvariantViolation if the simulator lost or invented work.
        validate_result(result, machine)
        print(
            f"  {spec:10s} {result.completion_time:10,.0f} "
            f"{result.completion_time / bounds.lower:8.2f} "
            f"{bounds.quality(result.completion_time):9.2f}"
        )

    print("""
All runs validated: work conserved, every goal executed exactly once,
no completion below the analytic bound.  The "x greedy" column is the
strategy-quality score — CWN's small factor over the free-communication
greedy envelope is the paper's headline, keep-local's huge one is the
cost of no load distribution at all.""")


if __name__ == "__main__":
    main()
