#!/usr/bin/env python
"""Irregular workloads: past the paper's predictable trees.

The paper used dc and fib *because* they are predictable (§3).  Real
symbolic computations are not — that is the introduction's whole case
for dynamic load balancing.  This example runs the library's irregular
workload generators (UTS geometric trees, randomized quicksort,
binomial coefficients) under four strategies and shows that the ranking
the paper found on predictable trees persists on hostile ones.

Run:  python examples/irregular_workloads.py
"""

from repro import simulate
from repro.workload import QuicksortTree, UnbalancedTreeSearch

TOPOLOGY = "grid:8x8"
STRATEGIES = ["cwn", "gm", "stealing", "local"]


def main() -> None:
    workloads = [
        UnbalancedTreeSearch(seed=7, root_children=32, q=0.47, m=2),
        QuicksortTree(4000, seed=7),
    ]
    for program in workloads:
        print(f"\n{program.label} — {program.total_goals()} goals on {TOPOLOGY}")
        print(f"  {'strategy':12s} {'speedup':>8s} {'util %':>7s} {'mean hops':>9s}")
        for spec in STRATEGIES:
            res = simulate(program, TOPOLOGY, spec, seed=1)
            print(
                f"  {spec:12s} {res.speedup:8.1f} {res.utilization_percent:7.1f} "
                f"{res.mean_goal_distance:9.2f}"
            )

    print("""
Reading the table: UTS subtree sizes vary over orders of magnitude and
quicksort's splits are data-dependent, yet the ordering matches the
paper's predictable-tree finding — eager directed placement (CWN)
spreads irregular work better than hoard-until-abundant (GM), and both
beat no distribution.  Work stealing is competitive when idleness, not
placement, is the binding constraint.""")


if __name__ == "__main__":
    main()
