#!/usr/bin/env python
"""Quickstart: run the paper's two competitors head to head.

Simulates the naive-Fibonacci workload on a 10x10 wrap-around grid (one
of the paper's machines) under CWN and under the Gradient Model, then
prints the comparison the whole paper is about.

Run:  python examples/quickstart.py
"""

from repro import simulate

WORKLOAD = "fib:15"      # 1,973 goals — one of the paper's six sizes
TOPOLOGY = "grid:10x10"  # 100 PEs, wrap-around (a torus)


def main() -> None:
    print(f"Workload {WORKLOAD} on {TOPOLOGY}\n")

    # Bare strategy names pick up the paper's Table 1 parameters for the
    # topology family (radius 9 / horizon 2 on grids, etc.).
    cwn = simulate(WORKLOAD, TOPOLOGY, "cwn", seed=1)
    gm = simulate(WORKLOAD, TOPOLOGY, "gm", seed=1)

    print(cwn.summary())
    print(gm.summary())
    print()
    print(f"speedup of CWN over GM : {cwn.speedup / gm.speedup:.2f}x")
    print(f"communication ratio    : {cwn.mean_goal_distance / gm.mean_goal_distance:.2f}x")
    print()
    print("The paper's conclusion in two lines: CWN distributes work more")
    print("effectively (higher speedup), at ~3x GM's communication volume.")

    # Every SimResult also carries the raw material: per-PE utilizations,
    # channel statistics, the hop histogram of Table 3...
    print()
    print(f"CWN hop histogram: {cwn.hop_histogram}")


if __name__ == "__main__":
    main()
