#!/usr/bin/env python
"""Replay a run through ORACLE's load-distribution monitor.

The paper: "This data is displayed on the graphics device with a
continuum of colors representing relative activity on each PE (red:
busy, blue: idle).  We found this facility particularly useful for
debugging the load balancing strategies."

This example runs the same workload under CWN and GM with per-PE
sampling enabled and prints both films side by side conceptually: watch
CWN light the whole grid almost immediately while GM's activity creeps
outward from the injection corner — the rise-time difference of Plots
11-16, visible PE by PE.

Run:  python examples/live_monitor.py           # plain characters
      python examples/live_monitor.py --color   # ANSI 256-color heat map
"""

import sys

from repro import SimConfig, simulate
from repro.oracle.monitor import render_film

WORKLOAD = "fib:13"
TOPOLOGY = "grid:8x8"
FRAMES = 8


def film(strategy: str, color: bool) -> str:
    pilot = simulate(WORKLOAD, TOPOLOGY, strategy, seed=1)
    interval = max(pilot.completion_time / FRAMES, 1.0)
    cfg = SimConfig(seed=1, sample_interval=interval, sample_per_pe=True)
    result = simulate(WORKLOAD, TOPOLOGY, strategy, config=cfg)
    header = result.summary()
    return header + "\n" + render_film(result, cols=8, color=color)


def main() -> None:
    color = "--color" in sys.argv
    for strategy in ("cwn", "gm"):
        print("=" * 64)
        print(f"strategy: {strategy}")
        print("=" * 64)
        print(film(strategy, color))
        print()


if __name__ == "__main__":
    main()
