#!/usr/bin/env python
"""Reproduce a single cell of the paper's Table 2, end to end.

Table 2 reports the speedup of CWN over GM for every (program, size,
topology, machine) combination.  This example recomputes one cell —
dc(1,987) on the 100-PE double-lattice-mesh — showing every moving part
explicitly instead of through the harness: topology construction,
Table 1 parameters, paired seeding, and the ratio computation.  It then
repeats the cell over several seeds to show the conclusion is not a
tie-breaking artifact.

Run:  python examples/reproduce_table2_cell.py
"""

from statistics import mean, stdev

from repro import CWN, DivideConquer, GradientModel, Machine, SimConfig
from repro.topology import DoubleLatticeMesh


def one_cell(seed: int) -> tuple[float, float]:
    # The paper's machine: "Double Lattice-Mesh of 5 10 10".
    topology = DoubleLatticeMesh(span=5, rows=10, cols=10)
    program = DivideConquer(1, 987)  # 1,973 goals
    config = SimConfig(seed=seed)

    # Table 1 parameters for the lattice-meshes.
    cwn = Machine(topology, program, CWN(radius=5, horizon=1), config).run()
    gm = Machine(
        topology,
        program,
        GradientModel(low_water_mark=1, high_water_mark=1, interval=20.0),
        config,
    ).run()

    assert cwn.result_value == gm.result_value == program.expected_result()
    return cwn.speedup, gm.speedup


def main() -> None:
    print("Table 2 cell: dc(1,987) on DLM(5,10,10), 100 PEs")
    print(f"paper's reported ratio for this cell: 1.04\n")

    ratios = []
    for seed in range(1, 6):
        cwn_speedup, gm_speedup = one_cell(seed)
        ratio = cwn_speedup / gm_speedup
        ratios.append(ratio)
        print(
            f"seed {seed}:  CWN speedup {cwn_speedup:6.2f}   "
            f"GM speedup {gm_speedup:6.2f}   ratio {ratio:.2f}"
        )

    print(f"\nmean ratio over seeds: {mean(ratios):.2f} +/- {stdev(ratios):.2f}")
    print("(absolute speedups differ from the paper's VAX-era cost model;")
    print(" the ratio — who wins and by how much — is the reproduced shape)")


if __name__ == "__main__":
    main()
