#!/usr/bin/env python
"""The extended tail of Plot 11 — the paper's diagnosis, tested.

Section 4, on CWN's weakest case: "Another problem we notice is the
extended tail in plot 11.  This suggests that only a few processors
were involved in the computation in that phase.  We believe the reason
for this to be our current method for computing the load on a PE...
This ignores potential future commitments."

The conclusion proposes counting suspended tasks into the advertised
load — and immediately warns: "Care must be taken not to lose the
agility of CWN while modifying it."

This example reproduces the tail on the paper's own configuration
(Fibonacci on the 100-PE double-lattice-mesh), measures it with the
time-series reductions (`rise_time`, `tail_length`), then applies the
suggested fix.  The result, under our cost model, is a **negative
result**: the commitments-aware metric makes every measure slightly
worse.  Inflating busy-looking PEs' loads deters *all* placement near
them, slowing the early spread (the rise time grows) by more than the
tail shrinks — exactly the agility loss the paper warned about.  The
suggestion is a hypothesis, and this is the experiment it called for.

Run:  python examples/extended_tail.py
"""

from repro.core import AdaptiveCWN, paper_cwn
from repro.experiments.runner import simulate
from repro.experiments.timeseries import rise_time, tail_length
from repro.oracle.config import SimConfig
from repro.topology import paper_dlm

FIB_N = 13  # the paper used fib(18); 13 keeps this example snappy
TOPO = paper_dlm(100)


def measure(strategy, label):
    pilot = simulate(f"fib:{FIB_N}", TOPO, strategy, seed=1)
    interval = max(pilot.completion_time / 80, 1.0)
    cfg = SimConfig(seed=1, sample_interval=interval)
    res = simulate(f"fib:{FIB_N}", TOPO, strategy, config=cfg)
    trace = [(s.time, 100.0 * s.utilization) for s in res.samples]
    rise = rise_time(trace, level=50.0)
    tail = tail_length(trace, res.completion_time, level=20.0)
    print(
        f"  {label:28s} completion={res.completion_time:7.0f}  "
        f"rise(50%)={rise:6.0f}  tail(<20%)={tail:6.0f}  "
        f"util={res.utilization_percent:5.1f}%"
    )
    return rise, tail


def main() -> None:
    print(f"fib({FIB_N}) on {TOPO.name} — the Plot 11 configuration\n")

    rise_plain, tail_plain = measure(paper_cwn("dlm"), "CWN (queue-length load)")
    rise_fix, tail_fix = measure(
        AdaptiveCWN(
            radius=5, horizon=1, load_metric="commitments", commitment_weight=0.5,
            saturation=None, pull=False,
        ),
        "CWN (commitments-aware load)",
    )
    measure(
        AdaptiveCWN(radius=5, horizon=1, load_metric="commitments"),
        "ACWN (all three fixes)",
    )

    verdict = (
        "confirmed: the fix trades away rise-time agility"
        if rise_fix >= rise_plain
        else "surprising: agility survived here — try more seeds"
    )
    print(f"""
The diagnosis is real — the run ends with a long low-utilization tail
({tail_plain:.0f} time units under the paper's queue-length measure).
The *suggested cure*, under our cost model, does not pay: the
commitments-aware metric makes suspended-task-heavy PEs repel new
goals, which slows the initial spread (rise {rise_plain:.0f} -> {rise_fix:.0f})
without reliably shrinking the tail ({tail_plain:.0f} -> {tail_fix:.0f}).
{verdict} — precisely the "care must be taken not to lose the agility
of CWN" caveat the conclusion attached to its own suggestion.  See
benchmarks/bench_ablation_acwn.py for the full component ablation.""")


if __name__ == "__main__":
    main()
