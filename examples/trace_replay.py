#!/usr/bin/env python
"""Execution-driven vs trace-driven simulation — the paper's §3 choice.

The paper weighed recording a computation's trace in advance against
executing the program inside the simulator, and chose execution, noting
a trace "would not save much in terms of simulation time".  Both modes
exist here, so the claim is checkable: record fib(13) once, replay the
recording against several strategies, and confirm replays are
bit-identical to live runs.

Recordings also serialize to JSON (shareable benchmark inputs) and can
be perturbed — the last section doubles every goal's work without
touching the generating program.

Run:  python examples/trace_replay.py
"""

import time

from repro import simulate
from repro.workload import Fibonacci, RecordedProgram, record


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def main() -> None:
    program = Fibonacci(13)
    recording, record_secs = timed(lambda: record(program))
    print(f"recorded {recording.total_goals()} goals in {record_secs * 1e3:.1f} ms\n")

    print(f"{'strategy':>10s}  {'live T':>9s}  {'replay T':>9s}  identical?")
    for strategy in ("cwn", "gm", "random"):
        live, live_secs = timed(
            lambda s=strategy: simulate(program, "grid:8x8", s, seed=1)
        )
        replay, replay_secs = timed(
            lambda s=strategy: simulate(recording, "grid:8x8", s, seed=1)
        )
        same = (
            replay.completion_time == live.completion_time
            and replay.hop_histogram == live.hop_histogram
        )
        print(
            f"{strategy:>10s}  {live.completion_time:9.1f}  "
            f"{replay.completion_time:9.1f}  {same}"
            f"   (wall: {live_secs * 1e3:.0f} vs {replay_secs * 1e3:.0f} ms)"
        )

    # Serialize, reload, perturb.
    reloaded = RecordedProgram.from_json(recording.to_json())
    heavy = reloaded.scale_work(2.0)
    base = simulate(reloaded, "grid:8x8", "cwn", seed=1)
    doubled = simulate(heavy, "grid:8x8", "cwn", seed=1)
    print()
    print(f"JSON round-trip goals : {reloaded.total_goals()}")
    print(f"2x work completion    : {doubled.completion_time:.0f} (base {base.completion_time:.0f})")
    print()
    print("The paper's observation holds: replay saves little wall time,")
    print("because executing fib IS just walking the same tree.")


if __name__ == "__main__":
    main()
