"""Setuptools entry point.

Kept as a classic setup.py (rather than pyproject [project] metadata) so
``pip install -e .`` works in offline environments without the ``wheel``
package — see the note in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Kale (ICPP 1988): Comparing the Performance of "
        "Two Dynamic Load Distribution Methods"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
